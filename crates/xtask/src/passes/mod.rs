//! Graph-aware analysis passes over the workspace model.
//!
//! Each pass walks the [`Workspace`](crate::model::Workspace) and the
//! [`CallGraph`](crate::callgraph::CallGraph) and emits [`Finding`]s with a
//! stable diagnostic code:
//!
//! | Code | Pass | Question answered |
//! |------|------|-------------------|
//! | A001 | [`a001`] | Which public fleet-facing APIs can transitively panic? |
//! | A002 | [`a002`] | Where are floats compared or ordered NaN-unsafely? |
//! | A003 | [`a003`] | What allocates inside the measured hot paths? |
//! | A004 | [`a004`] | Where can nondeterminism leak into results? |
//! | A005 | [`a005`] | Who constructs or mutates a lifecycle state outside the machine? |
//! | A006 | [`a006`] | Which deterministic roots can transitively reach a nondeterminism source? |
//! | A007 | [`a007`] | Which `anubis-parallel` closures break the executor's determinism contract? |
//! | A008 | [`a008`] | Which hot-path allocations are scope-local (arena-able), and do arena-clean functions stay clean? |
//!
//! A003/A006/A007/A008 consume the interprocedural effect summaries of
//! [`crate::dataflow`]; the others scan per-function.
//!
//! Findings are keyed by *(code, file, function, kind)* — deliberately not
//! by line — so the committed baseline survives unrelated edits to the
//! same file. Identical keys are aggregated by count in the baseline.
//!
//! Findings reachable from an *enforced* hot entry
//! ([`HotEntry::enforced`]) are marked [`Finding::enforced`]; those are
//! hard failures — the baseline never absorbs them (see
//! [`crate::report::Baseline::from_findings`]).

pub mod a001;
pub mod a002;
pub mod a003;
pub mod a004;
pub mod a005;
pub mod a006;
pub mod a007;
pub mod a008;

use crate::callgraph::CallGraph;
use crate::checks::GATED_CRATES;
use crate::dataflow::Summaries;
use crate::model::Workspace;
use std::fmt;

/// One analysis finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable diagnostic code (`A001`…`A004`).
    pub code: &'static str,
    /// Workspace-relative file of the flagged function.
    pub path: String,
    /// 1-based line of the flagged construct (not part of the key).
    pub line: usize,
    /// Qualified name of the flagged function (`Type::name` or `name`).
    pub func: String,
    /// Short machine-readable slug for the finding flavor
    /// (`panic-reach`, `float-eq`, `clone`, `time-source`, …).
    pub kind: String,
    /// Human-readable explanation, including the call path where the pass
    /// computes one.
    pub message: String,
    /// `true` when the finding sits on an enforced hot entry's reach: it
    /// is a hard failure the baseline never absorbs.
    pub enforced: bool,
}

impl Finding {
    /// The baseline key: code, file, function, and kind — line-free so the
    /// baseline is stable under refactors that only move code.
    pub fn key(&self) -> String {
        format!("{} {} {} {}", self.code, self.path, self.func, self.kind)
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}({}): {}",
            self.path, self.line, self.code, self.kind, self.message
        )
    }
}

/// One A003 hot entry point: the function whose forward reach is scanned
/// for allocations, plus whether its findings are enforced (hard failure)
/// or merely tracked against the baseline.
#[derive(Debug, Clone)]
pub struct HotEntry {
    /// Path substring selecting the file (`nn/src/mlp.rs`).
    pub path: String,
    /// Function name (`forward_into`).
    pub func: String,
    /// `true` makes every allocation reachable from this entry a hard
    /// failure instead of a baseline-tracked finding.
    pub enforce: bool,
}

impl HotEntry {
    /// A baseline-tracked entry: new allocations regress the baseline but
    /// existing ones are tolerated.
    pub fn tracked(path: &str, func: &str) -> Self {
        Self {
            path: path.to_owned(),
            func: func.to_owned(),
            enforce: false,
        }
    }

    /// An enforced entry: *any* allocation in its reach fails the run,
    /// baseline or not. Reserve for kernels already proven allocation-free.
    pub fn enforced(path: &str, func: &str) -> Self {
        Self {
            path: path.to_owned(),
            func: func.to_owned(),
            enforce: true,
        }
    }
}

/// Tunable inputs of an analysis run. [`AnalysisConfig::default`] matches
/// the real workspace; fixtures construct custom configs.
#[derive(Debug, Clone)]
pub struct AnalysisConfig {
    /// Crate directory names whose public APIs are A001/A004 roots.
    pub gated_crates: Vec<String>,
    /// Hot entry points for A003.
    pub hot_entries: Vec<HotEntry>,
    /// Crate directory names sanctioned to read the wall clock — the
    /// observability facade (`anubis-obs`, which confines `Instant` to a
    /// feature-gated module). A004's time-source scan skips these; every
    /// other crate must go through the facade.
    pub timing_facades: Vec<String>,
    /// Crate directory names that own the node-lifecycle state machine.
    /// A005 exempts them; everywhere else, constructing or mutating a
    /// state type is a finding.
    pub lifecycle_crates: Vec<String>,
    /// Type names whose variants/values only the lifecycle crates may
    /// construct or mutate (`NodeState`).
    pub state_types: Vec<String>,
    /// Crate directory names owning the deterministic executor
    /// (`anubis-parallel`). Sanctioned to probe the thread count (results
    /// never depend on it); A007 exempts their own internals.
    pub parallel_crates: Vec<String>,
    /// Executor entry points taking worker closures. A006 roots every
    /// caller (the chunk body is owned by the calling fn); A007 audits the
    /// closure arguments at each call site.
    pub parallel_entries: Vec<String>,
    /// Crate directory names sanctioned to read `std::env` — the config
    /// shim (`anubis-config`). Env reads anywhere else are A006 taint
    /// sources.
    pub env_shims: Vec<String>,
    /// Path substrings whose non-test fns are deterministic roots for
    /// A006 beyond the parallel callers: experiment renderers and the obs
    /// ring-buffer writers.
    pub deterministic_root_paths: Vec<String>,
    /// Crate directory names implementing the sanctioned arena
    /// (`anubis-arena`). Their internal allocations record no sites —
    /// pooled growth inside the arena is the mechanism, not a hot-path
    /// cost — and calls into them never count against arena-clean
    /// functions.
    pub arena_crates: Vec<String>,
    /// Functions registered **arena-clean**: every *direct* allocation in
    /// their own body (closures included) is an enforced A008 failure —
    /// per-call scratch must come from `anubis-arena` instead. Direct
    /// sites only, deliberately: transitive reach through the
    /// over-approximate name-based call graph would import collision
    /// noise, and the transitive budget is A003's job. The `enforce` flag
    /// is ignored; registration itself is the enforcement.
    pub arena_clean_entries: Vec<HotEntry>,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        let hot = vec![
            // Cox-Time gradient accumulation (chunk closures are owned by
            // `fit`, so scanning from it covers the chunk bodies too).
            HotEntry::tracked("selector/src/coxtime.rs", "fit"),
            // CDF similarity matrix and its integration kernel. The
            // integration kernel is proven allocation-free (PR 2); keep it
            // that way unconditionally.
            HotEntry::tracked("metrics/src/distance.rs", "pairwise_similarity_matrix"),
            HotEntry::tracked(
                "metrics/src/distance.rs",
                "pairwise_similarity_matrix_threads",
            ),
            HotEntry::tracked("metrics/src/distance.rs", "upper_triangle_similarities"),
            HotEntry::enforced("metrics/src/distance.rs", "integrate_ecdf"),
            // Incremental statistical core (PR 7): the three steady-state
            // kernels run once per benchmark result on the fleet path, so
            // any allocation in their reach is a hard failure. Each was
            // written against the collision list in crate::callgraph
            // (manual swaps instead of `<[T]>::swap`, no calls to names a
            // workspace method shares).
            HotEntry::enforced("metrics/src/distance.rs", "similarity_rows_into"),
            HotEntry::enforced("selector/src/select.rs", "celf_core"),
            HotEntry::enforced("selector/src/coxtime.rs", "warmstart_merge_into"),
            // MLP forward/backward and the optimizer step: the PR 2 hoist
            // left the kernels allocation-free, so the ones whose reach is
            // free of name-collision edges are enforced. The two forward
            // kernels stay tracked: their `forward` callee name-matches
            // unrelated `forward`/`apply` methods that carry baseline
            // allocations, and the over-approximating graph must keep
            // those edges (see crate::callgraph).
            HotEntry::tracked("nn/src/mlp.rs", "forward_into"),
            HotEntry::tracked("nn/src/mlp.rs", "forward_scalar_into"),
            HotEntry::enforced("nn/src/mlp.rs", "backward_flat"),
            HotEntry::enforced("nn/src/adam.rs", "step_flat"),
            // Deterministic parallel executor: every chunk body runs here.
            HotEntry::tracked("parallel/src/lib.rs", "execute"),
            HotEntry::tracked("parallel/src/lib.rs", "map_chunks"),
            HotEntry::tracked("parallel/src/lib.rs", "map_chunks_mut"),
            HotEntry::tracked("parallel/src/lib.rs", "map_items"),
            HotEntry::tracked("parallel/src/lib.rs", "map_indexed"),
            HotEntry::tracked("parallel/src/lib.rs", "reduce_chunks"),
        ];
        Self {
            gated_crates: GATED_CRATES.iter().map(|c| (*c).to_owned()).collect(),
            hot_entries: hot,
            timing_facades: vec!["obs".to_owned()],
            lifecycle_crates: vec!["lifecycle".to_owned()],
            state_types: vec!["NodeState".to_owned()],
            parallel_crates: vec!["parallel".to_owned()],
            parallel_entries: vec![
                "map_chunks".to_owned(),
                "map_chunks_mut".to_owned(),
                "map_items".to_owned(),
                "map_indexed".to_owned(),
                "reduce_chunks".to_owned(),
            ],
            env_shims: vec!["config".to_owned()],
            deterministic_root_paths: vec![
                "bench/src/experiments/".to_owned(),
                "obs/src/".to_owned(),
            ],
            arena_crates: vec!["arena".to_owned()],
            // The converted zero-alloc hot loops (PR 9): per-call scratch
            // comes from `anubis-arena` pools or caller-provided buffers;
            // any direct allocation reappearing in them fails the run.
            arena_clean_entries: vec![
                HotEntry::enforced("cluster/src/sim.rs", "try_allocate"),
                HotEntry::enforced("benchsuite/src/runner.rs", "append_jsonl"),
                HotEntry::enforced("obs/src/trace.rs", "append_jsonl"),
                HotEntry::enforced("metrics/src/json.rs", "push_f64"),
                HotEntry::enforced("metrics/src/json.rs", "push_escaped"),
                // The fleetd shard hot loop (PR 10): per-tick scratch is
                // pooled, proposals go to persistent report buffers.
                HotEntry::enforced("fleetd/src/shard.rs", "tick"),
            ],
        }
    }
}

impl AnalysisConfig {
    /// A config with everything empty — the base the pass unit tests
    /// extend so new fields don't churn every struct literal.
    pub fn bare() -> Self {
        Self {
            gated_crates: Vec::new(),
            hot_entries: Vec::new(),
            timing_facades: Vec::new(),
            lifecycle_crates: Vec::new(),
            state_types: Vec::new(),
            parallel_crates: Vec::new(),
            parallel_entries: Vec::new(),
            env_shims: Vec::new(),
            deterministic_root_paths: Vec::new(),
            arena_crates: Vec::new(),
            arena_clean_entries: Vec::new(),
        }
    }
}

/// Runs all eight passes and returns findings sorted by (code, path,
/// line, kind, func) — a deterministic order suitable for diffing. The
/// call graph and the interprocedural summaries are computed once and
/// shared by every summary-consuming pass.
pub fn run_analysis(ws: &Workspace, config: &AnalysisConfig) -> Vec<Finding> {
    let graph = CallGraph::build(ws);
    let summaries = Summaries::compute(ws, &graph, config);
    let mut findings = a001::run(ws, &graph, config);
    findings.extend(a002::run(ws));
    findings.extend(a003::run(ws, &graph, &summaries, config));
    findings.extend(a004::run(ws, &graph, config));
    findings.extend(a005::run(ws, &graph, config));
    findings.extend(a006::run(ws, &graph, &summaries, config));
    findings.extend(a007::run(ws, &graph, &summaries, config));
    findings.extend(a008::run(ws, &graph, &summaries, config));
    findings.sort_by(|a, b| {
        (a.code, &a.path, a.line, &a.kind, &a.func)
            .cmp(&(b.code, &b.path, b.line, &b.kind, &b.func))
    });
    findings
}

/// Computes the A008 arena-able inventory (see [`a008::arena_able`]):
/// every scope-local allocation reachable from an A003 hot entry. The
/// `analyze --arena-report` flag prints it as an informational report;
/// the sites are candidates for pooled-scratch conversion, not findings.
pub fn arena_able_report(ws: &Workspace, config: &AnalysisConfig) -> Vec<a008::ArenaAble> {
    let graph = CallGraph::build(ws);
    let summaries = Summaries::compute(ws, &graph, config);
    a008::arena_able(ws, &graph, &summaries, config)
}

/// Renders a call path of function indices as `a -> B::b -> c`.
pub(crate) fn path_string(ws: &Workspace, path: &[usize]) -> String {
    path.iter()
        .map(|&i| ws.fns[i].qual_name())
        .collect::<Vec<_>>()
        .join(" -> ")
}

/// Whether the function at `index` is a public API of a gated crate — a
/// root for reachability passes.
pub(crate) fn is_gated_public_root(ws: &Workspace, index: usize, config: &AnalysisConfig) -> bool {
    let item = &ws.fns[index];
    item.is_public
        && !item.in_test
        && config
            .gated_crates
            .iter()
            .any(|c| *c == ws.files[item.file].crate_name)
}

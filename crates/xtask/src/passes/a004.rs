//! A004 — determinism escapes.
//!
//! Paper figures must reproduce bit-for-bit, so results may not depend on
//! std's randomized hash ordering or on wall-clock time. The PR 1 lint
//! bans `Instant`/`SystemTime` *textually* in gated crates; this pass is
//! the graph-aware upgrade:
//!
//! - `hash-iteration`: a function that names `HashMap`/`HashSet` *and*
//!   iterates (`.iter()`, `.keys()`, `.values()`, `.drain()`,
//!   `.into_iter()`, or a `for` loop). Iteration order of std hash
//!   containers is randomized per process; anything it feeds into output
//!   is nondeterministic. (BTreeMap/BTreeSet are the sanctioned
//!   replacements.)
//! - `time-source`: a function using `Instant`/`SystemTime` anywhere in
//!   the workspace. When the function is reachable from a public API of a
//!   gated crate the message carries the call path — a wall-clock read
//!   inside the validation path taints results even when it lives in a
//!   helper crate the textual lint never looks at. Crates listed in
//!   [`AnalysisConfig::timing_facades`] (the `anubis-obs` observability
//!   facade) are exempt: they exist to confine wall-clock access behind a
//!   feature gate, and flagging them would force an allowlist entry for
//!   the one sanctioned call site.

use super::{is_gated_public_root, path_string, AnalysisConfig, Finding};
use crate::callgraph::CallGraph;
use crate::model::{CallKind, TokenKind, Workspace};

/// Method names that iterate a container.
const ITERATION_METHODS: &[&str] = &["iter", "keys", "values", "into_iter", "drain", "iter_mut"];

/// Runs the pass.
pub fn run(ws: &Workspace, graph: &CallGraph, config: &AnalysisConfig) -> Vec<Finding> {
    // Forward reachability from every gated public API: used to annotate
    // time-source findings with the path that makes them result-tainting.
    let roots: Vec<usize> = (0..ws.fns.len())
        .filter(|&i| is_gated_public_root(ws, i, config))
        .collect();
    let reach = graph.reach(&roots);

    let mut findings = Vec::new();
    for (index, item) in ws.fns.iter().enumerate() {
        if item.in_test {
            continue;
        }
        let file_path = &ws.files[item.file].path;

        // hash-iteration: the type must be named in this function and some
        // iteration evidence must exist.
        let mut hash_line = None;
        let mut iterates = false;
        for (i, token) in ws.body_tokens(item) {
            if token.kind == TokenKind::Ident
                && (token.text == "HashMap" || token.text == "HashSet")
            {
                hash_line.get_or_insert(ws.line_of(item, i));
            }
            if token.kind == TokenKind::Ident && token.text == "for" {
                iterates = true;
            }
        }
        let names_hash = hash_line.is_some()
            || item
                .params
                .iter()
                .any(|p| p.type_text.contains("HashMap") || p.type_text.contains("HashSet"));
        iterates = iterates
            || item.calls.iter().any(|c| {
                c.kind == CallKind::Method && ITERATION_METHODS.contains(&c.name.as_str())
            });
        if names_hash && iterates {
            findings.push(Finding {
                code: "A004",
                path: file_path.clone(),
                line: hash_line.unwrap_or(item.line),
                func: item.qual_name(),
                kind: "hash-iteration".to_owned(),
                message: format!(
                    "`{}` iterates a std hash container; iteration order is randomized per process — use BTreeMap/BTreeSet or sort before output",
                    item.qual_name()
                ),
                enforced: false,
            });
        }

        // time-source: Instant/SystemTime anywhere outside the sanctioned
        // timing facade, path-annotated when a gated public API reaches
        // this function.
        let in_facade = config
            .timing_facades
            .iter()
            .any(|c| *c == ws.files[item.file].crate_name);
        if in_facade {
            continue;
        }
        for (i, token) in ws.body_tokens(item) {
            if token.kind == TokenKind::Ident
                && (token.text == "Instant" || token.text == "SystemTime")
            {
                let mut message = format!(
                    "`{}` reads the wall clock via `{}`",
                    item.qual_name(),
                    token.text
                );
                if reach.dist[index] != usize::MAX {
                    let mut path = reach.path_from(index);
                    path.reverse();
                    message.push_str(&format!(
                        "; reachable from public API via {}",
                        path_string(ws, &path)
                    ));
                }
                findings.push(Finding {
                    code: "A004",
                    path: file_path.clone(),
                    line: ws.line_of(item, i),
                    func: item.qual_name(),
                    kind: "time-source".to_owned(),
                    message,
                    enforced: false,
                });
                break; // One time-source finding per function.
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;
    use crate::model::Workspace;

    fn analyze(files: &[(&str, &str)]) -> Vec<Finding> {
        let ws = Workspace::from_sources(files.iter().copied());
        let graph = CallGraph::build(&ws);
        run(&ws, &graph, &AnalysisConfig::default())
    }

    #[test]
    fn hash_iteration_flagged() {
        let findings = analyze(&[(
            "crates/cluster/src/lib.rs",
            "use std::collections::HashMap;\n\
             pub fn dump(m: &HashMap<String, u32>) -> Vec<u32> { m.values().copied().collect() }\n",
        )]);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].kind, "hash-iteration");
    }

    #[test]
    fn hash_lookup_without_iteration_not_flagged() {
        let findings = analyze(&[(
            "crates/cluster/src/lib.rs",
            "use std::collections::HashMap;\n\
             pub fn get(m: &HashMap<String, u32>, k: &str) -> Option<u32> { m.get(k).copied() }\n",
        )]);
        assert!(findings.is_empty());
    }

    #[test]
    fn time_source_in_helper_crate_annotated_with_path() {
        let findings = analyze(&[
            (
                "crates/validator/src/lib.rs",
                "pub fn validate() { anubis_metrics_stamp(); }\n",
            ),
            (
                "crates/metrics/src/lib.rs",
                "use std::time::Instant;\n\
                 pub fn anubis_metrics_stamp() { let _t = Instant::now(); }\n",
            ),
        ]);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].kind, "time-source");
        assert!(findings[0]
            .message
            .contains("validate -> anubis_metrics_stamp"));
    }

    #[test]
    fn unreachable_time_source_still_flagged_without_path() {
        let findings = analyze(&[(
            "crates/bench/src/bin/repro.rs",
            "use std::time::Instant;\nfn stamp() { let _t = Instant::now(); }\n",
        )]);
        assert_eq!(findings.len(), 1);
        assert!(!findings[0].message.contains("reachable from public API"));
    }

    #[test]
    fn timing_facade_crate_is_exempt() {
        let findings = analyze(&[
            (
                "crates/obs/src/wall.rs",
                "use std::time::Instant;\n\
                 pub fn elapsed() { let _t = Instant::now(); }\n",
            ),
            (
                "crates/metrics/src/lib.rs",
                "use std::time::Instant;\n\
                 pub fn stamp() { let _t = Instant::now(); }\n",
            ),
        ]);
        // Only the non-facade crate is flagged.
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].path, "crates/metrics/src/lib.rs");
    }
}

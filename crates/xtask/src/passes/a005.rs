//! A005 — lifecycle transition discipline.
//!
//! The node-lifecycle state machine (`anubis-lifecycle`) is only a proof
//! surface if **every** state change goes through its single
//! `transition` function. This pass enforces that lexically: outside the
//! lifecycle crates ([`AnalysisConfig::lifecycle_crates`]), no workspace
//! function may *name a variant of* a state type
//! ([`AnalysisConfig::state_types`], default `NodeState`) or take one by
//! mutable reference. Consumers read states through the predicate methods
//! (`is_healthy()`, `in_service()`, …) and change them by feeding
//! `LifecycleEvent`s to `NodeLifecycle::apply`; naming `NodeState::…`
//! anywhere else is how hand-rolled transitions start.
//!
//! Two finding kinds:
//!
//! - `construct` — a `NodeState::Variant` path expression (construction
//!   or variant pattern) outside the machine;
//! - `mut-param` — a function parameter whose type mutably borrows a
//!   state (`&mut NodeState`, `&mut Vec<NodeState>`, …), the signature of
//!   out-of-band mutation.
//!
//! When the offending function is reachable from a gated public API, the
//! message carries the call path so reviewers can see the blast radius.
//! The committed baseline holds **zero** A005 entries; any finding is a
//! regression.

use super::{is_gated_public_root, path_string, AnalysisConfig, Finding};
use crate::callgraph::CallGraph;
use crate::model::{TokenKind, Workspace};
use crate::spans::in_test_span;

/// Runs the pass over every non-lifecycle crate.
pub fn run(ws: &Workspace, graph: &CallGraph, config: &AnalysisConfig) -> Vec<Finding> {
    if config.state_types.is_empty() {
        return Vec::new();
    }
    let roots: Vec<usize> = (0..ws.fns.len())
        .filter(|&i| is_gated_public_root(ws, i, config))
        .collect();
    let reach = graph.reach(&roots);
    // Renders "; reachable from public entry via a -> b" for functions a
    // public gated API can reach, so the finding shows its blast radius.
    let via = |fn_index: Option<usize>| -> String {
        let Some(index) = fn_index else {
            return String::new();
        };
        if reach.dist[index] == usize::MAX {
            return String::new();
        }
        let mut path = reach.path_from(index);
        path.reverse();
        format!(
            "; reachable from public entry via {}",
            path_string(ws, &path)
        )
    };

    let mut findings = Vec::new();
    for (file_index, file) in ws.files.iter().enumerate() {
        if config.lifecycle_crates.contains(&file.crate_name) {
            continue;
        }
        let file_fns: Vec<usize> = ws
            .fns
            .iter()
            .enumerate()
            .filter(|(_, item)| item.file == file_index)
            .map(|(i, _)| i)
            .collect();
        // Innermost owner of a token, for attribution; tokens outside any
        // function body (consts, statics) attribute to `<module>`.
        let owner_of = |token_index: usize| -> Option<usize> {
            file_fns
                .iter()
                .copied()
                .find(|&fi| ws.fns[fi].owned.iter().any(|r| r.contains(&token_index)))
        };

        for (i, token) in file.tokens.iter().enumerate() {
            if token.kind != TokenKind::Ident || !config.state_types.contains(&token.text) {
                continue;
            }
            let variant = file
                .tokens
                .get(i + 1)
                .filter(|t| t.text == "::")
                .and_then(|_| file.tokens.get(i + 2))
                .filter(|t| t.kind == TokenKind::Ident);
            let Some(variant) = variant else {
                continue; // Type position (`-> NodeState`, `use …::NodeState`) is a read.
            };
            let line = file.masked.line_of(token.offset);
            let owner = owner_of(i);
            let in_test =
                owner.map_or_else(|| in_test_span(&file.spans, line), |fi| ws.fns[fi].in_test);
            if in_test {
                continue;
            }
            let func = owner.map_or_else(|| "<module>".to_owned(), |fi| ws.fns[fi].qual_name());
            findings.push(Finding {
                code: "A005",
                path: file.path.clone(),
                line,
                func: func.clone(),
                kind: "construct".to_owned(),
                message: format!(
                    "`{}::{}` names a lifecycle state outside the machine in `{func}`; \
                     route state changes through `anubis_lifecycle::transition` and reads \
                     through the predicate methods{}",
                    token.text,
                    variant.text,
                    via(owner),
                ),
                enforced: false,
            });
        }

        for &fi in &file_fns {
            let item = &ws.fns[fi];
            if item.in_test {
                continue;
            }
            for param in &item.params {
                let words: Vec<&str> = param.type_text.split_whitespace().collect();
                let names_state = config
                    .state_types
                    .iter()
                    .any(|t| words.contains(&t.as_str()));
                if !(names_state && words.contains(&"mut")) {
                    continue;
                }
                findings.push(Finding {
                    code: "A005",
                    path: file.path.clone(),
                    line: item.line,
                    func: item.qual_name(),
                    kind: "mut-param".to_owned(),
                    message: format!(
                        "`{}` takes `{}: {}` — a mutable borrow of a lifecycle state outside \
                         the machine; pass a `NodeLifecycle` and apply events instead{}",
                        item.qual_name(),
                        param.name,
                        param.type_text,
                        via(Some(fi)),
                    ),
                    enforced: false,
                });
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;
    use crate::model::Workspace;

    fn analyze(files: &[(&str, &str)]) -> Vec<Finding> {
        let ws = Workspace::from_sources(files.iter().copied());
        let graph = CallGraph::build(&ws);
        let mut config = AnalysisConfig::bare();
        config.gated_crates = vec!["cluster".to_owned()];
        config.lifecycle_crates = vec!["lifecycle".to_owned()];
        config.state_types = vec!["NodeState".to_owned()];
        run(&ws, &graph, &config)
    }

    #[test]
    fn variant_path_outside_lifecycle_is_flagged_with_public_path() {
        let findings = analyze(&[(
            "crates/cluster/src/lib.rs",
            "pub fn entry() { helper(); }\n\
             fn helper() { let _s = NodeState::Healthy; }\n",
        )]);
        assert_eq!(findings.len(), 1, "{findings:#?}");
        assert_eq!(findings[0].kind, "construct");
        assert_eq!(findings[0].func, "helper");
        assert!(
            findings[0].message.contains("entry -> helper"),
            "{}",
            findings[0].message
        );
    }

    #[test]
    fn the_lifecycle_crate_itself_is_exempt() {
        let findings = analyze(&[(
            "crates/lifecycle/src/machine.rs",
            "pub fn transition() { let _s = NodeState::Healthy; }\n",
        )]);
        assert!(findings.is_empty(), "{findings:#?}");
    }

    #[test]
    fn mut_state_parameter_is_flagged() {
        let findings = analyze(&[(
            "crates/cluster/src/lib.rs",
            "pub fn poke(state: &mut NodeState) { let _ = state; }\n",
        )]);
        assert_eq!(findings.len(), 1, "{findings:#?}");
        assert_eq!(findings[0].kind, "mut-param");
        assert!(findings[0].message.contains("`state: & mut NodeState`"));
    }

    #[test]
    fn type_position_and_reads_are_allowed() {
        let findings = analyze(&[(
            "crates/cluster/src/lib.rs",
            "use anubis_lifecycle::NodeState;\n\
             pub fn peek(state: NodeState) -> NodeState { state }\n\
             pub fn shown(states: &[NodeState]) -> usize { states.len() }\n",
        )]);
        assert!(findings.is_empty(), "{findings:#?}");
    }

    #[test]
    fn module_level_construction_attributes_to_module() {
        let findings = analyze(&[(
            "crates/cluster/src/lib.rs",
            "pub const BOOT: NodeState = NodeState::Healthy;\n",
        )]);
        assert_eq!(findings.len(), 1, "{findings:#?}");
        assert_eq!(findings[0].func, "<module>");
    }

    #[test]
    fn test_code_is_exempt() {
        let findings = analyze(&[(
            "crates/cluster/src/lib.rs",
            "pub fn live() {}\n\
             #[cfg(test)]\nmod tests {\n    fn check() { let _s = NodeState::Suspect; }\n}\n",
        )]);
        assert!(findings.is_empty(), "{findings:#?}");
    }
}

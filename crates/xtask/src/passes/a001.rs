//! A001 — panic-reachability.
//!
//! A public API of a fleet-facing crate must not abort a ten-thousand-node
//! validation run. This pass marks every function containing a *direct
//! panic source* — `unwrap`/`expect`, the panicking macro family, slice or
//! map indexing, and integer division with a runtime divisor — then runs a
//! reverse BFS over the call graph to find which gated public APIs can
//! transitively reach one. One finding per public root; the message
//! carries the shortest call path and the terminal panic source, so the
//! fix site is visible without re-running the analysis.
//!
//! `debug_assert!` is deliberately not a source (disabled in release), and
//! `cfg(test)` code is excluded entirely by the model.

use super::{is_gated_public_root, path_string, AnalysisConfig, Finding};
use crate::callgraph::CallGraph;
use crate::model::{CallKind, FnItem, TokenKind, Workspace};

/// Macros that unconditionally abort (or may abort) in release builds.
const PANIC_MACROS: &[&str] = &[
    "panic",
    "todo",
    "unimplemented",
    "unreachable",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Keyword idents that may precede `[` without the `[` being an index.
const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "in", "if", "else", "match", "return", "break", "mut", "ref", "move", "as", "dyn",
    "impl", "where", "const", "static", "box",
];

/// Integer type names whose division can panic on a zero divisor.
const INT_TYPES: &[&str] = &[
    "usize", "isize", "u8", "u16", "u32", "u64", "u128", "i8", "i16", "i32", "i64", "i128",
];

/// One direct panic source inside a function body.
#[derive(Debug, Clone)]
pub struct PanicSource {
    /// Short description (`` `.unwrap()` ``, `indexing`, …).
    pub reason: String,
    /// 1-based line of the construct.
    pub line: usize,
}

/// Scans a function's owned tokens and calls for direct panic sources,
/// in source order.
pub fn direct_panic_sources(ws: &Workspace, item: &FnItem) -> Vec<PanicSource> {
    let mut sources = Vec::new();
    for call in &item.calls {
        match call.kind {
            CallKind::Method if call.name == "unwrap" || call.name == "expect" => {
                sources.push(PanicSource {
                    reason: format!("`.{}()`", call.name),
                    line: call.line,
                });
            }
            CallKind::Macro if PANIC_MACROS.contains(&call.name.as_str()) => {
                sources.push(PanicSource {
                    reason: format!("`{}!`", call.name),
                    line: call.line,
                });
            }
            _ => {}
        }
    }
    let tokens = &ws.files[item.file].tokens;
    for (i, token) in ws.body_tokens(item) {
        match token.text.as_str() {
            "[" if i > 0 => {
                let prev = &tokens[i - 1];
                let is_index_base = match prev.kind {
                    TokenKind::Ident => !NON_INDEX_KEYWORDS.contains(&prev.text.as_str()),
                    TokenKind::Punct => prev.text == ")" || prev.text == "]",
                    TokenKind::Number => false,
                };
                if is_index_base {
                    sources.push(PanicSource {
                        reason: "indexing".to_owned(),
                        line: ws.line_of(item, i),
                    });
                }
            }
            "/" | "%" => {
                if let Some(reason) = runtime_int_divisor(item, tokens, i) {
                    sources.push(PanicSource {
                        reason,
                        line: ws.line_of(item, i),
                    });
                }
            }
            _ => {}
        }
    }
    sources.sort_by_key(|s| s.line);
    sources
}

/// Whether the divisor after the `/`/`%` at token `i` is a runtime integer
/// quantity that can be zero: `<ident>.len()` (not cast to float) or an
/// integer-typed parameter of the enclosing function.
fn runtime_int_divisor(item: &FnItem, tokens: &[crate::model::Token], i: usize) -> Option<String> {
    let at = |j: usize| tokens.get(j).map(|t| t.text.as_str());
    let ident = tokens.get(i + 1).filter(|t| t.kind == TokenKind::Ident)?;
    // `x / ys.len()` — panics when `ys` is empty, unless the whole divisor
    // is immediately cast to a float (`/ ys.len() as f64` divides floats).
    if at(i + 2) == Some(".")
        && at(i + 3) == Some("len")
        && at(i + 4) == Some("(")
        && at(i + 5) == Some(")")
    {
        let cast_to_float =
            at(i + 6) == Some("as") && matches!(at(i + 7), Some("f64") | Some("f32"));
        if !cast_to_float {
            return Some(format!("division by `{}.len()`", ident.text));
        }
        return None;
    }
    // `x / n` where `n` is an integer-typed parameter.
    let param_is_int = item.params.iter().any(|p| {
        p.name == ident.text
            && INT_TYPES
                .iter()
                .any(|ty| p.type_text.split_whitespace().any(|w| w == *ty))
    });
    if param_is_int {
        let cast_to_float =
            at(i + 2) == Some("as") && matches!(at(i + 3), Some("f64") | Some("f32"));
        if !cast_to_float {
            return Some(format!("division by parameter `{}`", ident.text));
        }
    }
    None
}

/// Runs the pass: one finding per gated public API that can reach a panic.
pub fn run(ws: &Workspace, graph: &CallGraph, config: &AnalysisConfig) -> Vec<Finding> {
    let sources: Vec<Vec<PanicSource>> = ws
        .fns
        .iter()
        .map(|item| {
            if item.in_test {
                Vec::new()
            } else {
                direct_panic_sources(ws, item)
            }
        })
        .collect();
    let targets: Vec<usize> = sources
        .iter()
        .enumerate()
        .filter(|(_, s)| !s.is_empty())
        .map(|(i, _)| i)
        .collect();
    let reach = graph.reach_reverse(&targets);

    let mut findings = Vec::new();
    for index in 0..ws.fns.len() {
        if !is_gated_public_root(ws, index, config) {
            continue;
        }
        let path = reach.path_from(index);
        let Some(&terminal) = path.last() else {
            continue; // Unreachable: no panic on any path.
        };
        let Some(source) = sources[terminal].first() else {
            continue;
        };
        let item = &ws.fns[index];
        let message = format!(
            "public `{}` may panic via {}; {} at {}:{}",
            item.qual_name(),
            path_string(ws, &path),
            source.reason,
            ws.files[ws.fns[terminal].file].path,
            source.line,
        );
        findings.push(Finding {
            code: "A001",
            path: ws.files[item.file].path.clone(),
            line: item.line,
            func: item.qual_name(),
            kind: "panic-reach".to_owned(),
            message,
            enforced: false,
        });
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;
    use crate::model::Workspace;

    fn analyze(files: &[(&str, &str)]) -> Vec<Finding> {
        let ws = Workspace::from_sources(files.iter().copied());
        let graph = CallGraph::build(&ws);
        run(&ws, &graph, &AnalysisConfig::default())
    }

    #[test]
    fn transitive_unwrap_is_reported_with_path() {
        let findings = analyze(&[(
            "crates/validator/src/lib.rs",
            "pub fn api(x: Option<u32>) -> u32 { helper(x) }\n\
                 fn helper(x: Option<u32>) -> u32 { x.unwrap() }\n",
        )]);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].func, "api");
        assert!(findings[0].message.contains("api -> helper"));
        assert!(findings[0].message.contains("`.unwrap()`"));
    }

    #[test]
    fn non_gated_crates_have_no_roots() {
        let findings = analyze(&[(
            "crates/metrics/src/lib.rs",
            "pub fn api(x: Option<u32>) -> u32 { x.unwrap() }\n",
        )]);
        assert!(findings.is_empty());
    }

    #[test]
    fn indexing_and_int_division_are_sources() {
        let findings = analyze(&[(
            "crates/selector/src/lib.rs",
            "pub fn first(xs: &[f64]) -> f64 { xs[0] }\n\
             pub fn avg(total: u64, n: u64) -> u64 { total / n }\n\
             pub fn avg_f(total: f64, n: u64) -> f64 { total / n as f64 }\n",
        )]);
        let funcs: Vec<&str> = findings.iter().map(|f| f.func.as_str()).collect();
        assert_eq!(funcs, vec!["first", "avg"], "float-cast division is exempt");
        assert!(findings[0].message.contains("indexing"));
        assert!(findings[1].message.contains("division by parameter `n`"));
    }

    #[test]
    fn len_division_flagged_unless_cast() {
        let findings = analyze(&[(
            "crates/cluster/src/lib.rs",
            "pub fn wrap(i: usize, xs: &[u8]) -> usize { i % xs.len() }\n\
             pub fn mean(sum: f64, xs: &[f64]) -> f64 { sum / xs.len() as f64 }\n",
        )]);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].func, "wrap");
        assert!(findings[0].message.contains("division by `xs.len()`"));
    }

    #[test]
    fn debug_assert_is_not_a_source() {
        let findings = analyze(&[(
            "crates/hwsim/src/lib.rs",
            "pub fn ok(x: u32) -> u32 { debug_assert!(x > 0); x }\n",
        )]);
        assert!(findings.is_empty());
    }

    #[test]
    fn assert_macro_is_a_source() {
        let findings = analyze(&[(
            "crates/hwsim/src/lib.rs",
            "pub fn checked(x: u32) -> u32 { assert!(x > 0); x }\n",
        )]);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("`assert!`"));
    }

    #[test]
    fn key_is_line_free() {
        let findings = analyze(&[(
            "crates/netsim/src/lib.rs",
            "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n",
        )]);
        assert_eq!(
            findings[0].key(),
            "A001 crates/netsim/src/lib.rs f panic-reach"
        );
    }
}

//! A007 — parallel-closure race discipline.
//!
//! The `anubis-parallel` executor promises bit-identical results at any
//! thread count, but the promise only holds when worker closures are pure
//! functions of their arguments. The `Fn + Sync` bounds already reject a
//! literal `&mut` capture at compile time; this pass machine-checks the
//! rest of the contract at every call site of an executor entry point
//! ([`AnalysisConfig::parallel_entries`]):
//!
//! - **`mut-capture`** — the closure assigns to (or compound-assigns
//!   through) a place rooted at a variable it captures, rather than one
//!   of its own parameters or locals. The executor's slot-output protocol
//!   (results returned per chunk, assembled by chunk index) is the
//!   sanctioned alternative, and `map_chunks_mut` closures mutating their
//!   own `&mut` chunk *parameter* are exactly that protocol, so parameter
//!   roots are exempt.
//! - **`interior-mutability`** — the closure names `RefCell`/`Cell`/
//!   `Mutex`/`RwLock`/`Atomic*` or calls `borrow_mut`/`lock`/`fetch_*`/
//!   `compare_exchange*`: shared-state smuggling the type system cannot
//!   see through `Fn + Sync`. Completion order is timing-dependent, so
//!   any cross-worker communication is a race on determinism even when it
//!   is data-race-free.
//! - **`tainted-call`** — the closure calls a function whose
//!   [`crate::dataflow`] summary reaches an A006 taint source; the
//!   message prints the call path from the closure into the source.
//!
//! The executor crate itself ([`AnalysisConfig::parallel_crates`]) is
//! exempt: its internals *implement* the slot protocol. Zero findings on
//! the clean tree is an invariant — the committed baseline never absorbs
//! a closure-discipline violation silently.

use super::{AnalysisConfig, Finding};
use crate::callgraph::{CallGraph, NameIndex};
use crate::dataflow::{Summaries, TAINTS};
use crate::model::{self, FnItem, TokenKind, Workspace};
use std::collections::BTreeSet;
use std::ops::Range;

/// Method names that operate on interior-mutability cells.
const CELL_METHODS: &[&str] = &[
    "borrow_mut",
    "lock",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "compare_exchange",
    "compare_exchange_weak",
];

/// Type names that are interior-mutability cells.
fn is_cell_type(name: &str) -> bool {
    matches!(name, "RefCell" | "Cell" | "Mutex" | "RwLock") || name.starts_with("Atomic")
}

/// Runs the pass.
pub fn run(
    ws: &Workspace,
    _graph: &CallGraph,
    summaries: &Summaries,
    config: &AnalysisConfig,
) -> Vec<Finding> {
    let index = NameIndex::build(ws);
    let mut findings = Vec::new();
    for (caller, item) in ws.fns.iter().enumerate() {
        if item.in_test {
            continue;
        }
        if config
            .parallel_crates
            .iter()
            .any(|c| *c == ws.files[item.file].crate_name)
        {
            continue;
        }
        let tokens = &ws.files[item.file].tokens;
        for range in &item.owned {
            for i in range.clone() {
                let t = &tokens[i];
                if t.kind != TokenKind::Ident
                    || !config.parallel_entries.contains(&t.text)
                    || !tokens.get(i + 1).is_some_and(|n| n.text == "(")
                    || i.checked_sub(1).is_some_and(|p| tokens[p].text == "fn")
                {
                    continue;
                }
                let Some(close) = matching_close(tokens, i + 1) else {
                    continue;
                };
                for closure in closures_in(tokens, i + 2, close) {
                    check_closure(
                        ws,
                        caller,
                        item,
                        &t.text,
                        &closure,
                        summaries,
                        &index,
                        &mut findings,
                    );
                }
            }
        }
    }
    findings
}

/// One closure argument: parameter-pattern identifiers plus the body
/// token range.
struct Closure {
    params: BTreeSet<String>,
    body: Range<usize>,
}

/// Index of the `)` matching the `(` at `open`.
fn matching_close(tokens: &[model::Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

/// Extracts the closure arguments of a call's argument list
/// (`tokens[start..close]`). `||` lexes as one token (zero-parameter
/// closure); `|a, b|` as `|`-delimited parameter patterns.
fn closures_in(tokens: &[model::Token], start: usize, close: usize) -> Vec<Closure> {
    let mut closures = Vec::new();
    let mut depth = 0i32;
    let mut j = start;
    while j < close {
        let text = tokens[j].text.as_str();
        match text {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            "|" | "||" if depth == 0 => {
                let mut params = BTreeSet::new();
                let mut b = j + 1;
                if text == "|" {
                    // Scan the parameter patterns to the closing `|`.
                    while b < close && tokens[b].text != "|" {
                        if tokens[b].kind == TokenKind::Ident && tokens[b].text != "mut" {
                            params.insert(tokens[b].text.clone());
                        }
                        b += 1;
                    }
                    b += 1; // past the closing `|`
                }
                let body = closure_body(tokens, b, close);
                j = body.end;
                closures.push(Closure { params, body });
                continue;
            }
            _ => {}
        }
        j += 1;
    }
    closures
}

/// The body token range of a closure whose parameters end at `b`: a
/// brace-matched block, or an expression running to the next top-level
/// `,` / the end of the argument list.
fn closure_body(tokens: &[model::Token], b: usize, close: usize) -> Range<usize> {
    if tokens.get(b).is_some_and(|t| t.text == "{") {
        let mut depth = 0i32;
        for (j, t) in tokens.iter().enumerate().take(close).skip(b) {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return b..(j + 1);
                    }
                }
                _ => {}
            }
        }
        return b..close;
    }
    let mut depth = 0i32;
    let mut j = b;
    while j < close {
        match tokens[j].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            "," if depth == 0 => break,
            _ => {}
        }
        j += 1;
    }
    b..j
}

/// Applies the three discipline checks to one closure, pushing at most
/// one finding per kind.
#[allow(clippy::too_many_arguments)]
fn check_closure(
    ws: &Workspace,
    caller: usize,
    item: &FnItem,
    entry: &str,
    closure: &Closure,
    summaries: &Summaries,
    index: &NameIndex,
    findings: &mut Vec<Finding>,
) {
    let file = &ws.files[item.file];
    let tokens = &file.tokens;
    let file_path = &file.path;

    // Locals bound inside the closure body: `let` patterns and `for`
    // loop variables are not captures. Every identifier in the pattern
    // (and, for `let`, the type annotation) counts — over-approximating
    // ownness only risks missing a capture, never inventing one.
    let mut locals: BTreeSet<&str> = BTreeSet::new();
    for i in closure.body.clone() {
        if tokens[i].kind != TokenKind::Ident {
            continue;
        }
        let is_let = tokens[i].text == "let";
        if !is_let && tokens[i].text != "for" {
            continue;
        }
        let mut j = i + 1;
        while j < closure.body.end {
            let t = &tokens[j];
            // `let` patterns end at `=` or `;`; `for` patterns at `in`.
            if t.text == ";" || (is_let && t.text == "=") || (!is_let && t.text == "in") {
                break;
            }
            if t.kind == TokenKind::Ident && t.text != "mut" {
                locals.insert(&t.text);
            }
            j += 1;
        }
    }
    let is_own = |name: &str| closure.params.contains(name) || locals.contains(name);

    // mut-capture: an assignment whose place expression roots at a
    // captured variable.
    let mut reported_mut = false;
    for i in closure.body.clone() {
        let text = tokens[i].text.as_str();
        let is_assign = text == "="
            || matches!(
                text,
                "+=" | "-=" | "*=" | "/=" | "%=" | "^=" | "&=" | "|=" | "<<=" | ">>="
            );
        if !is_assign || reported_mut {
            continue;
        }
        let Some(base) = place_base(tokens, closure.body.start, i) else {
            continue;
        };
        let name = tokens[base].text.as_str();
        if is_own(name) || name == "self" {
            continue;
        }
        findings.push(Finding {
            code: "A007",
            path: file_path.clone(),
            line: file.masked.line_of(tokens[i].offset),
            func: item.qual_name(),
            kind: "mut-capture".to_owned(),
            message: format!(
                "closure passed to `{entry}` in `{}` assigns through captured `{name}`; \
                 return per-chunk results through the executor's slot-output protocol instead",
                item.qual_name()
            ),
            enforced: false,
        });
        reported_mut = true;
    }

    // interior-mutability: cell types or cell methods named in the body.
    for i in closure.body.clone() {
        let t = &tokens[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let is_method = i > 0 && tokens[i - 1].text == ".";
        let hit = is_cell_type(&t.text) || (is_method && CELL_METHODS.contains(&t.text.as_str()));
        if hit {
            findings.push(Finding {
                code: "A007",
                path: file_path.clone(),
                line: file.masked.line_of(t.offset),
                func: item.qual_name(),
                kind: "interior-mutability".to_owned(),
                message: format!(
                    "closure passed to `{entry}` in `{}` uses interior mutability (`{}`); \
                     cross-worker communication makes results depend on completion order",
                    item.qual_name(),
                    t.text
                ),
                enforced: false,
            });
            break;
        }
    }

    // tainted-call: a called function whose summary reaches a taint
    // source. One finding per taint kind.
    let calls = model::extract_calls(tokens, &file.masked, std::slice::from_ref(&closure.body));
    let mut reported: BTreeSet<&'static str> = BTreeSet::new();
    for call in &calls {
        for callee in index.resolve(ws, caller, call) {
            for taint in TAINTS {
                if reported.contains(taint.slug())
                    || summaries.taint_dist(callee, taint) == usize::MAX
                {
                    continue;
                }
                let path = summaries.taint_path(callee, taint);
                let &terminal = path.last().expect("reachable taint has a path");
                let site = summaries
                    .taint_site(terminal, taint)
                    .expect("path terminal has a direct site");
                let via = path
                    .iter()
                    .map(|&i| ws.fns[i].qual_name())
                    .collect::<Vec<_>>()
                    .join(" -> ");
                findings.push(Finding {
                    code: "A007",
                    path: file_path.clone(),
                    line: call.line,
                    func: item.qual_name(),
                    kind: "tainted-call".to_owned(),
                    message: format!(
                        "closure passed to `{entry}` in `{}` calls `{}`, which reaches \
                         nondeterminism source `{}` ({}:{}) via {via}",
                        item.qual_name(),
                        call.name,
                        site.what,
                        ws.files[ws.fns[terminal].file].path,
                        site.line
                    ),
                    enforced: false,
                });
                reported.insert(taint.slug());
            }
        }
    }
}

/// Walks left from the assignment operator at `assign` to the base
/// identifier of the place expression (`a` in `a.b[0] = x`). `None` when
/// the place is not a simple identifier chain.
fn place_base(tokens: &[model::Token], start: usize, assign: usize) -> Option<usize> {
    let mut j = assign.checked_sub(1)?;
    loop {
        let t = &tokens[j];
        if t.text == "]" {
            // Bracket-match backwards.
            let mut depth = 0i32;
            loop {
                match tokens[j].text.as_str() {
                    "]" => depth += 1,
                    "[" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                if j == start {
                    return None;
                }
                j -= 1;
            }
            j = j.checked_sub(1)?;
            continue;
        }
        if t.kind == TokenKind::Ident {
            if j > start && tokens[j - 1].text == "." {
                j = j.checked_sub(2)?;
                continue;
            }
            // `let x: Ty = ..` — the token left of `=` is a type
            // annotation, not a place expression.
            if j > start && tokens[j - 1].text == ":" {
                return None;
            }
            return Some(j);
        }
        return None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;
    use crate::model::Workspace;

    fn analyze(files: &[(&str, &str)]) -> Vec<Finding> {
        let ws = Workspace::from_sources(files.iter().copied());
        let graph = CallGraph::build(&ws);
        let config = AnalysisConfig::default();
        let summaries = Summaries::compute(&ws, &graph, &config);
        run(&ws, &graph, &summaries, &config)
    }

    #[test]
    fn captured_accumulator_is_a_mut_capture() {
        let findings = analyze(&[(
            "crates/traces/src/lib.rs",
            "pub fn total(v: &[f64]) -> f64 {\n\
                 let mut total = 0.0;\n\
                 anubis_parallel::map_chunks(v, 64, 0, |_idx, chunk| {\n\
                     total += chunk.len() as f64;\n\
                 });\n\
                 total\n\
             }\n",
        )]);
        assert_eq!(findings.len(), 1, "{findings:#?}");
        assert_eq!(findings[0].kind, "mut-capture");
        assert!(findings[0].message.contains("captured `total`"));
    }

    #[test]
    fn chunk_parameter_mutation_is_the_slot_protocol() {
        let findings = analyze(&[(
            "crates/traces/src/lib.rs",
            "pub fn bump(v: &mut [f64]) {\n\
                 anubis_parallel::map_chunks_mut(v, 64, 0, |_idx, chunk| {\n\
                     for item in chunk.iter_mut() { *item += 1.0; }\n\
                     chunk[0] = 2.0;\n\
                     let mut local = 0.0; local += 1.0;\n\
                 });\n\
             }\n",
        )]);
        assert!(findings.is_empty(), "{findings:#?}");
    }

    #[test]
    fn type_annotations_and_tuple_patterns_are_not_captures() {
        // The three shapes that occur in the real Cox-Time trainer:
        // annotated lets (`let calls: usize = ..`), `for`-loop tuple
        // patterns (`for (a, &g) in ..` then `*a += g`), and closure
        // parameter patterns (`|&(x, y)|`).
        let findings = analyze(&[(
            "crates/traces/src/lib.rs",
            "pub fn grads(v: &[f64], out: &mut [f64]) {\n\
                 anubis_parallel::map_chunks_mut(out, 64, 0, |idx, acc| {\n\
                     let calls: usize = idx + 1;\n\
                     let total: f64 = v.iter().sum();\n\
                     for (a, &g) in acc.iter_mut().zip(v) { *a += g * total / calls as f64; }\n\
                 });\n\
                 anubis_parallel::map_items(v, 0, |&(ref x)| { let y: f64 = *x; y });\n\
             }\n",
        )]);
        assert!(findings.is_empty(), "{findings:#?}");
    }

    #[test]
    fn interior_mutability_is_flagged() {
        let findings = analyze(&[(
            "crates/traces/src/lib.rs",
            "pub fn sneak(v: &[f64], cell: &std::sync::atomic::AtomicUsize) {\n\
                 anubis_parallel::map_chunks(v, 64, 0, |_idx, chunk| {\n\
                     cell.fetch_add(chunk.len(), std::sync::atomic::Ordering::Relaxed);\n\
                 });\n\
             }\n",
        )]);
        assert!(
            findings.iter().any(|f| f.kind == "interior-mutability"),
            "{findings:#?}"
        );
    }

    #[test]
    fn tainted_callee_is_reported_with_path() {
        let findings = analyze(&[(
            "crates/traces/src/lib.rs",
            "pub fn run(v: &[f64]) -> Vec<f64> {\n\
                 anubis_parallel::map_chunks(v, 64, 0, |_idx, chunk| seed(chunk))\n\
             }\n\
             fn seed(chunk: &[f64]) -> f64 { let _ = std::env::var(\"SEED\"); chunk[0] }\n",
        )]);
        let tainted: Vec<_> = findings
            .iter()
            .filter(|f| f.kind == "tainted-call")
            .collect();
        assert_eq!(tainted.len(), 1, "{findings:#?}");
        assert!(tainted[0].message.contains("std::env::var"));
        assert!(tainted[0].message.contains("seed"));
    }

    #[test]
    fn executor_internals_are_exempt() {
        let findings = analyze(&[(
            "crates/parallel/src/lib.rs",
            "pub fn map_chunks(v: &[f64]) {\n\
                 let mut out = 0.0;\n\
                 map_items(v, 0, |_c| { out += 1.0; });\n\
             }\n\
             pub fn map_items(v: &[f64], t: usize, f: usize) {}\n",
        )]);
        assert!(findings.is_empty(), "{findings:#?}");
    }

    #[test]
    fn clean_slot_protocol_closure_passes() {
        let findings = analyze(&[(
            "crates/traces/src/lib.rs",
            "pub fn sums(v: &[f64]) -> Vec<f64> {\n\
                 anubis_parallel::map_chunks(v, 64, 0, |_idx, chunk| chunk.iter().sum::<f64>())\n\
             }\n",
        )]);
        assert!(findings.is_empty(), "{findings:#?}");
    }
}

//! A002 — float-safety.
//!
//! Similarity scores, survival probabilities, and loss values are all
//! `f64`; comparing them with `==`, or ordering them through
//! `partial_cmp().unwrap()` / `f64::max` folds, silently misbehaves the
//! moment a NaN appears in fleet data. The workspace idiom is
//! `total_cmp` (adopted in `crates/metrics`); this pass flags the three
//! NaN-unsafe shapes that bypass it:
//!
//! - `float-eq`: `==`/`!=` where one side is a non-sentinel float literal
//!   or an identifier known to be float-typed (signature param or
//!   `let x: f64` binding). Sentinel comparisons against exactly `0.0` or
//!   `1.0` are allowed — the workspace uses them as presence flags.
//! - `partial-cmp-unwrap`: `partial_cmp(..).unwrap()` sort keys, which
//!   panic on NaN (and are A001 sources too).
//! - `nan-minmax`: `f64::min` / `f64::max` used as a *function value*
//!   (e.g. `fold(0.0, f64::max)`) — these silently absorb NaN instead of
//!   propagating it.

use super::Finding;
use crate::model::{FnItem, Token, TokenKind, Workspace};

/// Float literals exempt from `float-eq` (sentinel values the workspace
/// compares deliberately).
const SENTINELS: &[&str] = &["0.0", "1.0"];

/// Runs the pass over every non-test function.
pub fn run(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    for item in &ws.fns {
        if item.in_test {
            continue;
        }
        scan_fn(ws, item, &mut findings);
    }
    findings
}

fn scan_fn(ws: &Workspace, item: &FnItem, findings: &mut Vec<Finding>) {
    let tokens = &ws.files[item.file].tokens;
    let float_idents = float_idents(item, tokens);
    let push = |findings: &mut Vec<Finding>, kind: &str, line: usize, message: String| {
        findings.push(Finding {
            code: "A002",
            path: ws.files[item.file].path.clone(),
            line,
            func: item.qual_name(),
            kind: kind.to_owned(),
            message,
            enforced: false,
        });
    };
    for (i, token) in ws.body_tokens(item) {
        match token.text.as_str() {
            "==" | "!=" => {
                let lhs = i.checked_sub(1).and_then(|j| tokens.get(j));
                let rhs = tokens.get(i + 1);
                // A sentinel on either side exempts the whole comparison:
                // `x == 0.0` is a deliberate presence flag even when `x`
                // is float-typed.
                let sentinel = |t: Option<&Token>| {
                    t.is_some_and(|t| {
                        t.kind == TokenKind::Number && SENTINELS.contains(&t.text.as_str())
                    })
                };
                if sentinel(lhs) || sentinel(rhs) {
                    continue;
                }
                let floaty = |t: Option<&Token>| {
                    t.is_some_and(|t| match t.kind {
                        TokenKind::Number => {
                            is_float_literal(&t.text) && !SENTINELS.contains(&t.text.as_str())
                        }
                        TokenKind::Ident => float_idents.contains(&t.text),
                        TokenKind::Punct => false,
                    })
                };
                if floaty(lhs) || floaty(rhs) {
                    push(
                        findings,
                        "float-eq",
                        ws.line_of(item, i),
                        format!(
                            "float `{}` comparison in `{}`; compare with a tolerance or `total_cmp` (see crates/metrics)",
                            token.text,
                            item.qual_name()
                        ),
                    );
                }
            }
            "partial_cmp" if token.kind == TokenKind::Ident && is_partial_cmp_unwrap(tokens, i) => {
                push(
                    findings,
                    "partial-cmp-unwrap",
                    ws.line_of(item, i),
                    format!(
                        "`partial_cmp().unwrap()` in `{}` panics on NaN; sort with `total_cmp` instead",
                        item.qual_name()
                    ),
                );
            }
            "f64" | "f32"
                if tokens.get(i + 1).is_some_and(|t| t.text == "::")
                    && tokens
                        .get(i + 2)
                        .is_some_and(|t| t.text == "min" || t.text == "max")
                    && !tokens.get(i + 3).is_some_and(|t| t.text == "(") =>
            {
                push(
                    findings,
                    "nan-minmax",
                    ws.line_of(item, i),
                    format!(
                        "`{}::{}` used as a fold function in `{}` silently drops NaN; fold with `total_cmp`-based max instead",
                        token.text,
                        tokens[i + 2].text,
                        item.qual_name()
                    ),
                );
            }
            _ => {}
        }
    }
}

/// Identifiers known float-typed inside `item`: scalar `f64`/`f32`
/// parameters plus `let name: f64` bindings in the body.
fn float_idents(item: &FnItem, tokens: &[Token]) -> Vec<String> {
    let mut idents: Vec<String> = item
        .params
        .iter()
        .filter(|p| is_scalar_float_type(&p.type_text))
        .map(|p| p.name.clone())
        .collect();
    for range in &item.owned {
        let mut j = range.start;
        while j + 3 < range.end {
            if tokens[j].text == "let"
                && tokens[j + 1].kind == TokenKind::Ident
                && tokens[j + 2].text == ":"
                && matches!(tokens[j + 3].text.as_str(), "f64" | "f32")
            {
                idents.push(tokens[j + 1].text.clone());
            }
            j += 1;
        }
    }
    idents.sort();
    idents.dedup();
    idents
}

/// Whether a parameter type is a bare (possibly referenced) float scalar.
fn is_scalar_float_type(type_text: &str) -> bool {
    let words: Vec<&str> = type_text
        .split_whitespace()
        .filter(|w| *w != "&" && *w != "mut")
        .collect();
    matches!(words.as_slice(), ["f64"] | ["f32"])
}

/// Whether the `partial_cmp` at token `i` is followed (after its argument
/// list) by `.unwrap()`.
fn is_partial_cmp_unwrap(tokens: &[Token], i: usize) -> bool {
    if !tokens.get(i + 1).is_some_and(|t| t.text == "(") {
        return false;
    }
    let mut depth = 0usize;
    let mut j = i + 1;
    while j < tokens.len() {
        match tokens[j].text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        j += 1;
    }
    tokens.get(j + 1).is_some_and(|t| t.text == ".")
        && tokens.get(j + 2).is_some_and(|t| t.text == "unwrap")
}

/// Whether a Number token is a float literal (`0.95`, `1e-6`, `2f64`) and
/// not an integer or hex literal.
fn is_float_literal(text: &str) -> bool {
    if text.starts_with("0x") || text.starts_with("0b") || text.starts_with("0o") {
        return false;
    }
    text.contains('.')
        || text.ends_with("f32")
        || text.ends_with("f64")
        || text.contains(['e', 'E'])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Workspace;

    fn analyze(src: &str) -> Vec<Finding> {
        let ws = Workspace::from_sources([("crates/metrics/src/lib.rs", src)]);
        run(&ws)
    }

    #[test]
    fn float_literal_equality_flagged_sentinels_exempt() {
        let findings = analyze(
            "pub fn check(x: f64) -> bool { x == 0.95 }\n\
             pub fn flag(x: f64) -> bool { x == 0.0 }\n",
        );
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].kind, "float-eq");
        assert_eq!(findings[0].func, "check");
    }

    #[test]
    fn float_param_identity_comparison_flagged() {
        let findings = analyze("pub fn same(a: f64, b: f64) -> bool { a != b }\n");
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].kind, "float-eq");
    }

    #[test]
    fn integer_comparison_not_flagged() {
        let findings = analyze("pub fn same(a: u32, b: u32) -> bool { a == b && b == 7 }\n");
        assert!(findings.is_empty());
    }

    #[test]
    fn let_annotated_float_flagged() {
        let findings =
            analyze("pub fn f(v: &[f64]) -> bool { let s: f64 = v.iter().sum(); s == s }\n");
        assert_eq!(findings.len(), 1);
    }

    #[test]
    fn partial_cmp_unwrap_flagged() {
        let findings = analyze(
            "pub fn sort(v: &mut Vec<f64>) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n",
        );
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].kind, "partial-cmp-unwrap");
    }

    #[test]
    fn partial_cmp_without_unwrap_not_flagged() {
        let findings = analyze(
            "pub fn sort(v: &mut Vec<f64>) { v.sort_by(|a, b| a.partial_cmp(b).expect(\"no nan\")); }\n",
        );
        assert!(findings.iter().all(|f| f.kind != "partial-cmp-unwrap"));
    }

    #[test]
    fn fold_minmax_fn_value_flagged_direct_call_not() {
        let findings = analyze(
            "pub fn peak(v: &[f64]) -> f64 { v.iter().copied().fold(0.0, f64::max) }\n\
             pub fn two(a: f64, b: f64) -> f64 { f64::max(a, b) }\n",
        );
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].kind, "nan-minmax");
        assert_eq!(findings[0].func, "peak");
    }
}

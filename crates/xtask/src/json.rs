//! Minimal JSON reader for xtask's own file formats.
//!
//! The workspace vendors no JSON crate, and xtask only ever consumes JSON
//! it (or `anubis-obs`) produced: trace JSONL lines, the bench baseline,
//! and `bench-current.jsonl`. This is a small recursive-descent parser
//! over that well-formed subset — strict enough to reject garbage with a
//! byte-offset error, simple enough to audit at a glance. Numbers are
//! parsed as `f64`; object keys keep first-wins semantics in a `BTreeMap`
//! (duplicate keys never occur in our own output).

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, as `f64`.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; keys sorted, first occurrence wins.
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The object payload, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Obj(map) => Some(map),
            _ => None,
        }
    }

    /// Looks up `key` in an object; `None` for non-objects too.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.as_obj().and_then(|map| map.get(key))
    }
}

/// Parses one complete JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(&b) = bytes.get(*pos) {
        if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(JsonValue::Str),
        Some(b't') => parse_literal(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", JsonValue::Null),
        Some(b) if *b == b'-' || b.is_ascii_digit() => parse_number(bytes, pos),
        Some(b) => Err(format!("unexpected byte {b:#04x} at {pos}", pos = *pos)),
        None => Err("unexpected end of input".to_owned()),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("expected `{word}` at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while let Some(&b) = bytes.get(*pos) {
        if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
            *pos += 1;
        } else {
            break;
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(JsonValue::Num)
        .map_err(|e| format!("bad number `{text}` at byte {start}: {e}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes.get(*pos), Some(&b'"'));
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_owned()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|e| format!("bad \\u escape: {e}"))?;
                        // Surrogate halves (never produced by our writers)
                        // degrade to U+FFFD rather than erroring out.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar; `bytes` came from a `str`, so a
                // char boundary always exists at or before `pos + 4`.
                let rest = &bytes[*pos..];
                let text = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                if let Some(c) = text.chars().next() {
                    out.push(c);
                    *pos += c.len_utf8();
                } else {
                    return Err("unterminated string".to_owned());
                }
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    *pos += 1; // consume `[`
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            other => return Err(format!("expected `,` or `]`, found {other:?}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    *pos += 1; // consume `{`
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        map.entry(key).or_insert(value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(map));
            }
            other => return Err(format!("expected `,` or `}}`, found {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_trace_header_line() {
        let v = parse(r#"{"schema":1,"records":4,"dropped":0}"#).expect("valid");
        assert_eq!(v.get("schema").and_then(JsonValue::as_num), Some(1.0));
        assert_eq!(v.get("records").and_then(JsonValue::as_num), Some(4.0));
    }

    #[test]
    fn parses_nested_values_and_escapes() {
        let v = parse(r#"{"a":[1,-2.5,1e3,true,null],"s":"x\n\"A"}"#).expect("valid");
        let arr = match v.get("a") {
            Some(JsonValue::Arr(items)) => items,
            other => panic!("expected array, got {other:?}"),
        };
        assert_eq!(arr.len(), 5);
        assert_eq!(arr[1].as_num(), Some(-2.5));
        assert_eq!(arr[2].as_num(), Some(1000.0));
        assert_eq!(v.get("s").and_then(JsonValue::as_str), Some("x\n\"A"));
    }

    #[test]
    fn rejects_trailing_garbage_and_truncation() {
        assert!(parse("{\"a\":1} x").is_err());
        assert!(parse("{\"a\":").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn parses_unicode_text() {
        let v = parse("{\"s\":\"héllo→\"}").expect("valid");
        assert_eq!(v.get("s").and_then(JsonValue::as_str), Some("héllo→"));
    }

    #[test]
    fn decodes_every_simple_escape() {
        let v = parse(r#"{"s":"\"\\\/\n\r\t\b\f"}"#).expect("valid");
        assert_eq!(
            v.get("s").and_then(JsonValue::as_str),
            Some("\"\\/\n\r\t\u{8}\u{c}")
        );
    }

    #[test]
    fn decodes_unicode_escapes_and_degrades_surrogates() {
        let v = parse(r#"{"s":"Aé→"}"#).expect("valid");
        assert_eq!(v.get("s").and_then(JsonValue::as_str), Some("Aé→"));
        // A lone surrogate half never appears in our own writers' output;
        // it decodes to U+FFFD instead of failing the whole document.
        let v = parse(r#""\ud800""#).expect("valid");
        assert_eq!(v.as_str(), Some("\u{fffd}"));
        assert!(parse(r#""\u00"#).is_err(), "truncated \\u escape");
        assert!(parse(r#""\u00zz""#).is_err(), "non-hex \\u escape");
        assert!(parse(r#""\q""#).is_err(), "unknown escape");
    }

    #[test]
    fn parses_nested_arrays_to_depth() {
        let v = parse("[[1,[2,[3,[]]]],[4]]").expect("valid");
        let JsonValue::Arr(outer) = &v else {
            panic!("expected array, got {v:?}");
        };
        assert_eq!(outer.len(), 2);
        let JsonValue::Arr(first) = &outer[0] else {
            panic!("expected nested array");
        };
        assert_eq!(first[0].as_num(), Some(1.0));
        let JsonValue::Arr(second) = &first[1] else {
            panic!("expected nested array");
        };
        assert_eq!(second[0].as_num(), Some(2.0));
        assert_eq!(
            second[1],
            JsonValue::Arr(vec![JsonValue::Num(3.0), JsonValue::Arr(Vec::new())])
        );
    }

    #[test]
    fn rejects_truncation_everywhere() {
        for text in [
            "",
            "{",
            "{\"k\"",
            "{\"k\":",
            "{\"k\":1",
            "{\"k\":1,",
            "[",
            "[1",
            "[1,",
            "tru",
            "-",
            "\"\\",
        ] {
            assert!(parse(text).is_err(), "`{text}` must not parse");
        }
    }

    #[test]
    fn duplicate_keys_keep_the_first_value() {
        let v = parse(r#"{"k":1,"k":2,"other":3}"#).expect("valid");
        assert_eq!(v.get("k").and_then(JsonValue::as_num), Some(1.0));
        assert_eq!(v.get("other").and_then(JsonValue::as_num), Some(3.0));
        assert_eq!(v.as_obj().map(BTreeMap::len), Some(2));
    }
}

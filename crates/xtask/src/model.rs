//! Token-level model of the workspace's Rust source.
//!
//! The analysis passes (`A001`–`A004`, see [`crate::passes`]) need to
//! answer questions a line-oriented lint cannot: *which functions call
//! which*, *what does a function's body actually do*, *is this `==`
//! comparing floats*. A full parser (`syn`) is off the table — the xtask
//! crate is std-only — so this module builds a deliberately lightweight
//! model on top of the existing masking lexer ([`crate::mask`]):
//!
//! 1. **Tokens.** The masked source (comments and literals blanked) is
//!    split into identifier / number / punctuation tokens with byte
//!    offsets, so every token maps back to a `file:line`.
//! 2. **Items.** A single forward scan recovers `fn` items — name,
//!    enclosing `impl`/`trait` type, visibility, parameter names and type
//!    text, and the token range of the body — plus the nesting needed to
//!    attribute body tokens to the *innermost* enclosing function
//!    (closures stay with their parent; nested `fn`s get their own item).
//! 3. **Calls.** Each function body yields its call sites: free calls
//!    (`helper(..)`), qualified calls (`stats::mean(..)`, `Ecdf::new(..)`),
//!    method calls (`.eval(..)`) and macro invocations (`assert!`).
//!
//! The model is an **over-approximation by construction**: it never
//! resolves types, so downstream consumers (the call graph) connect calls
//! to every plausible target. The rules are documented in
//! [`crate::callgraph`] and DESIGN.md; the guiding principle is that a
//! pass may report a spurious path but must not miss a real one through
//! model blindness.

use crate::checks::classify;
use crate::mask::{mask, MaskedSource};
use crate::spans::{in_test_span, test_spans, TestSpan};
use crate::walk;
use std::fs;
use std::io;
use std::ops::Range;
use std::path::Path;

/// What a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `samples`, `f64`).
    Ident,
    /// Numeric literal (`42`, `0.95`, `1e-6`).
    Number,
    /// Punctuation, possibly multi-byte (`::`, `==`, `->`, `{`).
    Punct,
}

/// One token of masked source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// The token text, verbatim.
    pub text: String,
    /// Byte offset in the (masked) source.
    pub offset: usize,
}

impl Token {
    fn is(&self, text: &str) -> bool {
        self.text == text
    }
}

/// Multi-byte punctuation, longest first so greedy matching is correct.
const MULTI_PUNCT: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "..", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Tokenizes masked source bytes. Whitespace (including everything the
/// masker blanked) separates tokens; offsets index the original file.
pub fn tokenize(masked: &[u8]) -> Vec<Token> {
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < masked.len() {
        let b = masked[i];
        if b.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Raw identifier: `r#match` is one identifier token (text kept
        // verbatim, `r#` included, so raw names never collide with the
        // keyword lists). Raw *strings* (`r"…"`, `r#"…"#`) were blanked by
        // the masker and never reach this branch: a `"` is not an
        // identifier start.
        if b == b'r'
            && masked.get(i + 1) == Some(&b'#')
            && masked.get(i + 2).copied().is_some_and(is_ident_start)
        {
            let start = i;
            i += 2;
            while i < masked.len() && is_ident_byte(masked[i]) {
                i += 1;
            }
            tokens.push(Token {
                kind: TokenKind::Ident,
                text: String::from_utf8_lossy(&masked[start..i]).into_owned(),
                offset: start,
            });
            continue;
        }
        if is_ident_start(b) {
            let start = i;
            while i < masked.len() && is_ident_byte(masked[i]) {
                i += 1;
            }
            tokens.push(Token {
                kind: TokenKind::Ident,
                text: String::from_utf8_lossy(&masked[start..i]).into_owned(),
                offset: start,
            });
            continue;
        }
        if b.is_ascii_digit() {
            let start = i;
            while i < masked.len() && (is_ident_byte(masked[i])) {
                i += 1;
            }
            // Fractional part: a `.` followed by a digit continues the
            // number; `0..n` and tuple access `pair.0` stay punctuation.
            if i + 1 < masked.len() && masked[i] == b'.' && masked[i + 1].is_ascii_digit() {
                i += 1;
                while i < masked.len() && is_ident_byte(masked[i]) {
                    i += 1;
                }
            }
            // Exponent sign: `1e-6` / `2.5E+3`.
            if i < masked.len()
                && (masked[i] == b'-' || masked[i] == b'+')
                && masked[i - 1].eq_ignore_ascii_case(&b'e')
                && masked.get(i + 1).is_some_and(u8::is_ascii_digit)
            {
                i += 1;
                while i < masked.len() && is_ident_byte(masked[i]) {
                    i += 1;
                }
            }
            tokens.push(Token {
                kind: TokenKind::Number,
                text: String::from_utf8_lossy(&masked[start..i]).into_owned(),
                offset: start,
            });
            continue;
        }
        let mut matched = None;
        for op in MULTI_PUNCT {
            if masked[i..].starts_with(op.as_bytes()) {
                matched = Some(*op);
                break;
            }
        }
        let text = matched.map_or_else(|| (b as char).to_string(), str::to_owned);
        let len = text.len();
        tokens.push(Token {
            kind: TokenKind::Punct,
            text,
            offset: i,
        });
        i += len;
    }
    tokens
}

/// How a call site refers to its target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallKind {
    /// Unqualified call: `helper(..)`.
    Free,
    /// Path-qualified call: `stats::mean(..)`, `Ecdf::new(..)`.
    Qualified,
    /// Method call: `x.eval(..)`.
    Method,
    /// Macro invocation: `assert!(..)`.
    Macro,
}

/// One call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Call {
    /// Callee name (last path segment / method / macro name).
    pub name: String,
    /// The path segment immediately before the name for qualified calls
    /// (`stats` in `stats::mean`, `Ecdf` in `Ecdf::new`).
    pub qualifier: Option<String>,
    /// Call form.
    pub kind: CallKind,
    /// 1-based line of the call.
    pub line: usize,
    /// Token index of the callee-name token in the file's token stream,
    /// so effect analyses can inspect the surrounding expression.
    pub at: usize,
}

/// One function parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    /// Binding name (first identifier of the pattern).
    pub name: String,
    /// The type text, tokens joined with spaces (`& [ f64 ]`).
    pub type_text: String,
}

/// A scanned `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Index of the file in [`Workspace::files`].
    pub file: usize,
    /// Function name.
    pub name: String,
    /// Enclosing `impl`/`trait` type name, if any.
    pub impl_type: Option<String>,
    /// `true` for plain-`pub` items (`pub(crate)` is not public API).
    pub is_public: bool,
    /// Whether the first parameter is (a reference to) `self`.
    pub has_self: bool,
    /// Whether the item is compiled only under `cfg(test)` (or lives in a
    /// test/bench file).
    pub in_test: bool,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Parameters (excluding `self`).
    pub params: Vec<Param>,
    /// Token range of the body, including the outer braces. Empty for
    /// bodyless trait-method declarations.
    pub body: Range<usize>,
    /// `body` minus the body ranges of any nested `fn` items, so each
    /// token belongs to exactly one function.
    pub owned: Vec<Range<usize>>,
    /// Call sites in the owned body tokens.
    pub calls: Vec<Call>,
}

impl FnItem {
    /// `Type::name` when the function sits in an impl/trait block, else
    /// the bare name.
    pub fn qual_name(&self) -> String {
        match &self.impl_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// One scanned source file.
pub struct SourceFile {
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// The crate directory name (`validator` for `crates/validator/...`,
    /// `suite` for the root `src/`).
    pub crate_name: String,
    /// Masked source (offsets map to the original file).
    pub masked: MaskedSource,
    /// Token stream of the masked source.
    pub tokens: Vec<Token>,
    /// `#[cfg(test)]` line spans.
    pub spans: Vec<TestSpan>,
    /// File stem (`stats` for `.../stats.rs`), used as a module-name hint
    /// when resolving qualified calls.
    pub stem: String,
}

/// The scanned workspace: every non-test source file plus every function.
pub struct Workspace {
    /// Scanned files.
    pub files: Vec<SourceFile>,
    /// All functions across all files, in (file, position) order.
    pub fns: Vec<FnItem>,
}

impl Workspace {
    /// Scans every workspace `.rs` file under `root` (the same walk the
    /// lint performs), skipping files that are entirely test code.
    pub fn scan(root: &Path) -> io::Result<Self> {
        let mut sources = Vec::new();
        for relative in walk::rust_files(root)? {
            if classify(&relative).is_test_code {
                continue;
            }
            let text = fs::read_to_string(root.join(&relative))?;
            sources.push((relative, text));
        }
        Ok(Self::from_sources(
            sources.iter().map(|(p, s)| (p.as_str(), s.as_str())),
        ))
    }

    /// Builds a workspace model from in-memory `(path, source)` pairs —
    /// the constructor tests and fixtures use.
    pub fn from_sources<'a>(sources: impl IntoIterator<Item = (&'a str, &'a str)>) -> Self {
        let mut files = Vec::new();
        let mut fns = Vec::new();
        for (path, text) in sources {
            let masked = mask(text);
            let tokens = tokenize(&masked.masked);
            let spans = test_spans(&masked);
            let crate_name = crate_of(path);
            let stem = path
                .rsplit('/')
                .next()
                .unwrap_or(path)
                .trim_end_matches(".rs")
                .to_owned();
            let file_index = files.len();
            let mut file_fns = scan_fns(file_index, &tokens, &masked, &spans);
            compute_owned_ranges(&mut file_fns);
            for item in &mut file_fns {
                item.calls = extract_calls(&tokens, &masked, &item.owned);
            }
            fns.extend(file_fns);
            files.push(SourceFile {
                path: path.to_owned(),
                crate_name,
                masked,
                tokens,
                spans,
                stem,
            });
        }
        Self { files, fns }
    }

    /// Iterates the owned body tokens of one function as
    /// `(token_index, &Token)` pairs.
    pub fn body_tokens<'a>(
        &'a self,
        item: &'a FnItem,
    ) -> impl Iterator<Item = (usize, &'a Token)> + 'a {
        let tokens = &self.files[item.file].tokens;
        item.owned
            .iter()
            .flat_map(move |range| range.clone().map(move |i| (i, &tokens[i])))
    }

    /// 1-based line of a token in a function's file.
    pub fn line_of(&self, item: &FnItem, token_index: usize) -> usize {
        let file = &self.files[item.file];
        file.masked.line_of(file.tokens[token_index].offset)
    }
}

/// The crate directory name for a workspace-relative path.
fn crate_of(path: &str) -> String {
    let mut parts = path.split('/');
    match (parts.next(), parts.next()) {
        (Some("crates"), Some(name)) => name.to_owned(),
        _ => "suite".to_owned(),
    }
}

/// Identifiers that look like calls but are control flow or bindings.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "fn", "let",
    "mut", "ref", "move", "in", "as", "where", "impl", "dyn", "pub", "use", "mod", "const",
    "static", "type", "struct", "enum", "trait", "unsafe", "extern", "crate", "super", "await",
    "async", "box", "Self", "self",
];

/// Tokens that may directly precede an *item* `fn` keyword (as opposed to
/// a `fn(..)` pointer type, which follows `:`/`<`/`(` and friends).
fn fn_is_item(tokens: &[Token], at: usize) -> bool {
    let Some(prev) = at.checked_sub(1).map(|i| &tokens[i]) else {
        return true;
    };
    match prev.kind {
        TokenKind::Punct => matches!(prev.text.as_str(), "{" | "}" | ";" | "]" | ")"),
        TokenKind::Ident => matches!(
            prev.text.as_str(),
            "pub" | "unsafe" | "const" | "async" | "extern" | "default"
        ),
        TokenKind::Number => false,
    }
}

/// Whether the tokens before index `at` (a `fn` keyword) include a plain
/// `pub` (not `pub(crate)`/`pub(super)`).
fn fn_is_public(tokens: &[Token], at: usize) -> bool {
    let mut i = at;
    while i > 0 {
        let prev = &tokens[i - 1];
        match prev.text.as_str() {
            "unsafe" | "const" | "async" | "extern" | "default" => i -= 1,
            ")" => {
                // Possibly the close of `pub(crate)`: the preceding tokens
                // are `pub ( crate` — a restricted visibility, not public.
                return false;
            }
            "pub" => return true,
            _ => return false,
        }
    }
    false
}

/// An `impl Type { .. }` / `trait Name { .. }` scope the item scanner
/// tracks while walking brace nesting; functions inside are methods of
/// `type_name`.
struct Scope {
    type_name: String,
    /// Brace depth *after* this scope's `{` was consumed; the scope pops
    /// when depth returns below it.
    depth: usize,
}

/// Scans a token stream for `fn` items. Bodies are token ranges; nested
/// functions produce nested entries.
fn scan_fns(
    file: usize,
    tokens: &[Token],
    masked: &MaskedSource,
    spans: &[TestSpan],
) -> Vec<FnItem> {
    let mut fns = Vec::new();
    let mut scopes: Vec<Scope> = Vec::new();
    let mut depth = 0usize;
    let mut i = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth = depth.saturating_sub(1);
                while scopes.last().is_some_and(|s| s.depth > depth) {
                    scopes.pop();
                }
            }
            "impl" | "trait" if t.kind == TokenKind::Ident => {
                if let Some((type_name, open)) = scan_type_block(tokens, i) {
                    // Register the scope; the `{` itself is consumed by the
                    // main loop when we reach it.
                    i = open; // position of `{`
                    depth += 1;
                    scopes.push(Scope { type_name, depth });
                    i += 1;
                    continue;
                }
            }
            "fn" if t.kind == TokenKind::Ident && fn_is_item(tokens, i) => {
                if let Some((item, resume)) = scan_fn(file, tokens, masked, spans, i, &scopes) {
                    // Resume at the body's `{` (or past the `;`): the main
                    // loop then tracks the body braces itself, keeping the
                    // scope stack in sync and finding nested `fn` items.
                    fns.push(item);
                    i = resume;
                    continue;
                }
            }
            _ => {}
        }
        i += 1;
    }
    fns
}

/// Parses an `impl`/`trait` header starting at `at`; returns the type name
/// and the index of the opening `{`.
fn scan_type_block(tokens: &[Token], at: usize) -> Option<(String, usize)> {
    let mut idents: Vec<&str> = Vec::new();
    let mut after_for: Vec<&str> = Vec::new();
    let mut saw_for = false;
    let mut j = at + 1;
    while j < tokens.len() {
        let t = &tokens[j];
        match t.kind {
            TokenKind::Punct if t.is("{") => {
                let chosen = if saw_for { &after_for } else { &idents };
                // The implemented type is the last path segment before any
                // generic arguments: `foo::Bar<Baz>` names `Bar`... but the
                // simple dominant cases (`Type`, `Trait for Type`) reduce to
                // the first collected identifier.
                let name = chosen.first().copied()?;
                return Some((name.to_owned(), j));
            }
            TokenKind::Punct if t.is(";") => return None, // `impl Trait;` — malformed, bail
            TokenKind::Ident if t.is("for") => saw_for = true,
            TokenKind::Ident if t.is("where") => {
                // Everything after `where` is bounds; skip to the `{`.
                let open = tokens[j..].iter().position(|t| t.is("{"))? + j;
                let chosen = if saw_for { &after_for } else { &idents };
                let name = chosen.first().copied()?;
                return Some((name.to_owned(), open));
            }
            TokenKind::Ident => {
                // Skip lifetimes (`'a` tokenizes as `'` + ident).
                let is_lifetime = j > 0 && tokens[j - 1].is("'");
                if !is_lifetime {
                    if saw_for {
                        after_for.push(&t.text);
                    } else {
                        idents.push(&t.text);
                    }
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// Parses one `fn` item starting at the `fn` keyword. Returns the item and
/// the token index to resume scanning from (just inside the body, or after
/// the signature for bodyless declarations).
fn scan_fn(
    file: usize,
    tokens: &[Token],
    masked: &MaskedSource,
    spans: &[TestSpan],
    at: usize,
    scopes: &[Scope],
) -> Option<(FnItem, usize)> {
    let name_token = tokens.get(at + 1)?;
    if name_token.kind != TokenKind::Ident {
        return None;
    }
    let name = name_token.text.clone();
    let line = masked.line_of(tokens[at].offset);

    // Skip generics between the name and the parameter list. `>>` closes
    // two angle levels at once.
    let mut j = at + 2;
    if tokens.get(j).is_some_and(|t| t.is("<")) {
        let mut angle = 0i32;
        while j < tokens.len() {
            match tokens[j].text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                ">>" => angle -= 2,
                "->" | "{" | ";" => return None, // malformed
                _ => {}
            }
            j += 1;
            if angle <= 0 {
                break;
            }
        }
    }
    if !tokens.get(j).is_some_and(|t| t.is("(")) {
        return None;
    }

    // Parameter list: split on top-level commas.
    let params_start = j + 1;
    let mut paren = 1i32;
    let mut angle = 0i32;
    let mut k = params_start;
    let mut param_starts = vec![params_start];
    while k < tokens.len() && paren > 0 {
        match tokens[k].text.as_str() {
            "(" | "[" => paren += 1,
            ")" | "]" => paren -= 1,
            "<" => angle += 1,
            ">" => angle -= 1,
            ">>" => angle -= 2,
            "," if paren == 1 && angle <= 0 => param_starts.push(k + 1),
            _ => {}
        }
        k += 1;
    }
    let params_end = k.saturating_sub(1); // index of the closing `)`
    let mut params = Vec::new();
    let mut has_self = false;
    for (pi, &start) in param_starts.iter().enumerate() {
        let end = param_starts
            .get(pi + 1)
            .map_or(params_end, |&next| next.saturating_sub(1));
        if start >= end {
            continue;
        }
        let segment = &tokens[start..end];
        if segment.iter().any(|t| t.is("self")) && !segment.iter().any(|t| t.is(":")) {
            has_self = true;
            continue;
        }
        let colon = segment.iter().position(|t| t.is(":"));
        let pname = segment
            .iter()
            .find(|t| t.kind == TokenKind::Ident && !t.is("mut"))
            .map(|t| t.text.clone());
        if let (Some(colon), Some(pname)) = (colon, pname) {
            let type_text = segment[colon + 1..]
                .iter()
                .map(|t| t.text.as_str())
                .collect::<Vec<_>>()
                .join(" ");
            params.push(Param {
                name: pname,
                type_text,
            });
        }
    }

    // Find the body `{` (or `;` for a bodyless declaration), skipping the
    // return type and where clause.
    let mut m = k;
    let mut body = 0..0;
    let mut resume = k;
    while m < tokens.len() {
        match tokens[m].text.as_str() {
            ";" => {
                resume = m + 1;
                break;
            }
            "{" => {
                // Brace-match the body.
                let mut d = 0usize;
                let mut e = m;
                while e < tokens.len() {
                    match tokens[e].text.as_str() {
                        "{" => d += 1,
                        "}" => {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    e += 1;
                }
                body = m..(e + 1).min(tokens.len());
                resume = m;
                break;
            }
            _ => m += 1,
        }
    }

    let impl_type = scopes.last().map(|s| s.type_name.clone());
    let item = FnItem {
        file,
        name,
        impl_type,
        is_public: fn_is_public(tokens, at),
        has_self,
        in_test: in_test_span(spans, line),
        line,
        params,
        body,
        owned: Vec::new(),
        calls: Vec::new(),
    };
    Some((item, resume))
}

/// Subtracts nested function bodies from each function's body range so
/// token attribution is innermost-wins.
fn compute_owned_ranges(fns: &mut [FnItem]) {
    let bodies: Vec<Range<usize>> = fns.iter().map(|f| f.body.clone()).collect();
    for (i, item) in fns.iter_mut().enumerate() {
        if item.body.is_empty() {
            continue;
        }
        // Direct nested bodies: strictly contained in this body and not
        // contained in another strictly-contained body.
        let mut nested: Vec<&Range<usize>> = bodies
            .iter()
            .enumerate()
            .filter(|&(j, b)| {
                j != i && !b.is_empty() && b.start > item.body.start && b.end <= item.body.end
            })
            .map(|(_, b)| b)
            .collect();
        nested.sort_by_key(|b| b.start);
        let mut owned = Vec::new();
        let mut cursor = item.body.start;
        for b in nested {
            if b.start < cursor {
                continue; // contained in a previous nested body
            }
            if cursor < b.start {
                owned.push(cursor..b.start);
            }
            cursor = b.end;
        }
        if cursor < item.body.end {
            owned.push(cursor..item.body.end);
        }
        item.owned = owned;
    }
}

/// Extracts call sites from the owned token ranges of one function. Also
/// used by A007 to extract the calls of a single closure body sub-range.
pub(crate) fn extract_calls(
    tokens: &[Token],
    masked: &MaskedSource,
    owned: &[Range<usize>],
) -> Vec<Call> {
    let mut calls = Vec::new();
    for range in owned {
        for i in range.clone() {
            let t = &tokens[i];
            if t.kind != TokenKind::Ident {
                continue;
            }
            let next = tokens.get(i + 1);
            let prev = i.checked_sub(1).map(|p| &tokens[p]);
            let line = masked.line_of(t.offset);
            if next.is_some_and(|n| n.is("!")) {
                // `!=` lexes as one token, so a bare `!` here is a macro
                // bang (macro calls may use `(`, `[` or `{` delimiters).
                let delim = tokens.get(i + 2);
                if delim.is_some_and(|d| d.is("(") || d.is("[") || d.is("{")) {
                    calls.push(Call {
                        name: t.text.clone(),
                        qualifier: None,
                        kind: CallKind::Macro,
                        line,
                        at: i,
                    });
                }
                continue;
            }
            if !next.is_some_and(|n| n.is("(")) {
                continue;
            }
            if NON_CALL_KEYWORDS.contains(&t.text.as_str()) {
                continue;
            }
            match prev {
                Some(p) if p.is(".") => calls.push(Call {
                    name: t.text.clone(),
                    qualifier: None,
                    kind: CallKind::Method,
                    line,
                    at: i,
                }),
                Some(p) if p.is("::") => {
                    let qualifier = i
                        .checked_sub(2)
                        .map(|q| &tokens[q])
                        .filter(|q| q.kind == TokenKind::Ident)
                        .map(|q| q.text.clone());
                    calls.push(Call {
                        name: t.text.clone(),
                        qualifier,
                        kind: CallKind::Qualified,
                        line,
                        at: i,
                    });
                }
                Some(p) if p.is("fn") => {} // the definition itself
                _ => calls.push(Call {
                    name: t.text.clone(),
                    qualifier: None,
                    kind: CallKind::Free,
                    line,
                    at: i,
                }),
            }
        }
    }
    calls
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(src: &str) -> Workspace {
        Workspace::from_sources([("crates/demo/src/lib.rs", src)])
    }

    fn texts(tokens: &[Token]) -> Vec<&str> {
        tokens.iter().map(|t| t.text.as_str()).collect()
    }

    #[test]
    fn tokenizer_splits_idents_numbers_puncts() {
        let m = mask("let x = a.partial_cmp(&b); // c\n");
        let toks = tokenize(&m.masked);
        assert_eq!(
            texts(&toks),
            vec![
                "let",
                "x",
                "=",
                "a",
                ".",
                "partial_cmp",
                "(",
                "&",
                "b",
                ")",
                ";"
            ]
        );
    }

    #[test]
    fn tokenizer_keeps_float_literals_whole() {
        let m = mask("x == 24.5 && y != 1e-6 && 0..n");
        let toks = tokenize(&m.masked);
        assert_eq!(
            texts(&toks),
            vec!["x", "==", "24.5", "&&", "y", "!=", "1e-6", "&&", "0", "..", "n"]
        );
    }

    #[test]
    fn tokenizer_merges_multichar_puncts() {
        let m = mask("a::b -> c >= d << e ..= f");
        let toks = tokenize(&m.masked);
        assert_eq!(
            texts(&toks),
            vec!["a", "::", "b", "->", "c", ">=", "d", "<<", "e", "..=", "f"]
        );
    }

    #[test]
    fn scans_free_and_method_fns() {
        let src = "//! m\npub fn top(x: f64, n: usize) -> f64 { x }\nstruct S;\nimpl S {\n    pub fn method(&self, k: u32) {}\n    fn private_one() {}\n}\n";
        let w = ws(src);
        assert_eq!(w.fns.len(), 3);
        let top = &w.fns[0];
        assert_eq!(top.name, "top");
        assert!(top.is_public && !top.has_self && top.impl_type.is_none());
        assert_eq!(top.params.len(), 2);
        assert_eq!(top.params[0].type_text, "f64");
        let method = &w.fns[1];
        assert_eq!(method.qual_name(), "S::method");
        assert!(method.has_self && method.is_public);
        assert!(!w.fns[2].is_public);
    }

    #[test]
    fn trait_impls_and_for_blocks_get_the_type_name() {
        let src = "//! m\nimpl Clone for Widget {\n    fn clone(&self) -> Self { Widget }\n}\nimpl<'a> Holder<'a> {\n    fn get(&self) -> u8 { 0 }\n}\n";
        let w = ws(src);
        assert_eq!(w.fns[0].qual_name(), "Widget::clone");
        assert_eq!(w.fns[1].qual_name(), "Holder::get");
    }

    #[test]
    fn pub_crate_is_not_public() {
        let src = "//! m\npub(crate) fn hidden() {}\npub fn shown() {}\n";
        let w = ws(src);
        assert!(!w.fns[0].is_public);
        assert!(w.fns[1].is_public);
    }

    #[test]
    fn cfg_test_functions_are_marked() {
        let src = "//! m\nfn live() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\n";
        let w = ws(src);
        assert!(!w.fns[0].in_test);
        assert!(w.fns[1].in_test);
    }

    #[test]
    fn extracts_call_kinds() {
        let src = "//! m\nfn f(v: &[f64]) {\n    helper(v);\n    stats::mean(v);\n    v.iter();\n    assert!(true);\n}\nfn helper(_v: &[f64]) {}\n";
        let w = ws(src);
        let calls = &w.fns[0].calls;
        assert_eq!(calls.len(), 4);
        assert_eq!(
            (calls[0].name.as_str(), calls[0].kind),
            ("helper", CallKind::Free)
        );
        assert_eq!(calls[1].kind, CallKind::Qualified);
        assert_eq!(calls[1].qualifier.as_deref(), Some("stats"));
        assert_eq!(calls[2].kind, CallKind::Method);
        assert_eq!(
            (calls[3].name.as_str(), calls[3].kind),
            ("assert", CallKind::Macro)
        );
    }

    #[test]
    fn nested_fns_own_their_tokens() {
        let src = "//! m\nfn outer() {\n    inner_call();\n    fn nested() { nested_call(); }\n    after_call();\n}\n";
        let w = ws(src);
        let outer = &w.fns[0];
        let nested = &w.fns[1];
        assert_eq!(outer.name, "outer");
        assert_eq!(nested.name, "nested");
        let outer_names: Vec<&str> = outer.calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(outer_names, vec!["inner_call", "after_call"]);
        let nested_names: Vec<&str> = nested.calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(nested_names, vec!["nested_call"]);
    }

    #[test]
    fn closures_attribute_to_the_enclosing_fn() {
        let src = "//! m\nfn f(v: &mut [f64]) {\n    v.sort_by(|a, b| a.total_cmp(b));\n}\n";
        let w = ws(src);
        let names: Vec<&str> = w.fns[0].calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["sort_by", "total_cmp"]);
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let src = "//! m\nfn apply(op: fn(usize) -> usize, x: usize) -> usize { op(x) }\n";
        let w = ws(src);
        assert_eq!(w.fns.len(), 1);
        assert_eq!(w.fns[0].name, "apply");
    }

    #[test]
    fn struct_literals_are_not_calls() {
        let src = "//! m\nstruct P { x: u8 }\nfn f() -> P {\n    P { x: 1 }\n}\n";
        let w = ws(src);
        assert!(w.fns[0].calls.is_empty());
    }

    #[test]
    fn generic_fns_parse() {
        let src = "//! m\npub fn pick<T: Ord>(items: Vec<Vec<T>>, idx: usize) -> T { todo!() }\n";
        let w = ws(src);
        assert_eq!(w.fns[0].name, "pick");
        assert_eq!(w.fns[0].params.len(), 2);
        assert_eq!(w.fns[0].params[1].name, "idx");
    }

    #[test]
    fn crate_names_derive_from_paths() {
        assert_eq!(crate_of("crates/validator/src/lib.rs"), "validator");
        assert_eq!(crate_of("src/lib.rs"), "suite");
        assert_eq!(crate_of("examples/demo.rs"), "suite");
    }

    #[test]
    fn scan_skips_test_files_entirely() {
        let w = Workspace::from_sources([
            ("crates/demo/src/lib.rs", "//! m\nfn live() {}\n"),
            ("crates/demo/tests/e2e.rs", "fn test_only() {}\n"),
        ]);
        // from_sources does not filter paths; scan() does. Emulate here:
        assert_eq!(w.fns.len(), 2);
        assert!(classify("crates/demo/tests/e2e.rs").is_test_code);
    }
}

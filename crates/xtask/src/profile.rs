//! `cargo xtask profile` — summarizes an `anubis-obs` JSONL trace.
//!
//! The repro binary's `--trace` flag emits one JSON object per line: a
//! header, then `enter`/`exit`/`point` records ordered by sequence number,
//! then counter and histogram totals (schema v1, written by
//! `anubis_obs::trace::Trace::to_jsonl`). This module replays the span
//! stack to attribute **exclusive** virtual time — a span's own time minus
//! the time spent in child spans — and renders:
//!
//! - the top-k hot spans by exclusive virtual time,
//! - a per-crate rollup (crate = the `target` prefix before `::`),
//! - counter totals and histogram bucket tables.
//!
//! Virtual time is whatever clock the instrumented code fed to
//! `anubis_obs::set_time` — simulation hours for the cluster pipeline —
//! so the summary describes *simulated* cost, reproducible bit-for-bit,
//! not wall time.
//!
//! The replay is tolerant of unbalanced traces (a ring buffer that
//! wrapped drops oldest records first): exits without a matching enter
//! are counted but not timed, and spans still open at end-of-trace are
//! closed at the last observed virtual time.

use crate::json::{parse, JsonValue};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Aggregated statistics for one `(target, name)` span key.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpanStat {
    /// Completed (or force-closed) activations.
    pub count: u64,
    /// Total virtual time including children.
    pub total_vt: f64,
    /// Virtual time excluding children.
    pub exclusive_vt: f64,
}

/// One histogram snapshot: bucket edges, per-bucket counts (with the
/// trailing overflow bucket), and total sample count.
pub type HistSnapshot = (Vec<f64>, Vec<u64>, u64);

/// Everything extracted from one trace file.
#[derive(Debug, Clone, Default)]
pub struct Profile {
    /// Records promised by the header line, if present.
    pub header_records: u64,
    /// Records the recorder overwrote before the drain.
    pub dropped: u64,
    /// Per-`(target, name)` span statistics.
    pub spans: BTreeMap<(String, String), SpanStat>,
    /// `point` event counts per `(target, name)`.
    pub points: BTreeMap<(String, String), u64>,
    /// Counter totals per `(target, counter)`.
    pub counters: BTreeMap<(String, String), f64>,
    /// Histograms per `(target, hist)`.
    pub hists: BTreeMap<(String, String), HistSnapshot>,
    /// Exit records that had no matching enter (ring-buffer truncation).
    pub unmatched_exits: u64,
    /// Spans force-closed at end-of-trace.
    pub force_closed: u64,
}

/// One open activation on the replay stack.
struct Open {
    key: (String, String),
    enter_vt: f64,
    child_vt: f64,
}

impl Profile {
    /// Parses a full JSONL trace. Blank lines are skipped; a malformed
    /// line aborts with its 1-based line number.
    pub fn from_jsonl(text: &str) -> Result<Self, String> {
        let mut profile = Profile::default();
        let mut stack: Vec<Open> = Vec::new();
        let mut last_vt = 0.0_f64;

        for (index, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let value = parse(line).map_err(|e| format!("line {}: {e}", index + 1))?;
            if let Some(schema) = value.get("schema").and_then(JsonValue::as_num) {
                if schema != 1.0 {
                    return Err(format!("line {}: unsupported schema {schema}", index + 1));
                }
                profile.header_records = value
                    .get("records")
                    .and_then(JsonValue::as_num)
                    .unwrap_or(0.0) as u64;
                profile.dropped = value
                    .get("dropped")
                    .and_then(JsonValue::as_num)
                    .unwrap_or(0.0) as u64;
            } else if value.get("ev").is_some() {
                profile.apply_record(&value, &mut stack, &mut last_vt);
            } else if value.get("counter").is_some() {
                let key = key_of(&value, "counter");
                let total = value
                    .get("total")
                    .and_then(JsonValue::as_num)
                    .unwrap_or(0.0);
                *profile.counters.entry(key).or_insert(0.0) += total;
            } else if value.get("hist").is_some() {
                let key = key_of(&value, "hist");
                let edges = num_array(value.get("edges"));
                let counts: Vec<u64> = num_array(value.get("counts"))
                    .iter()
                    .map(|&c| c as u64)
                    .collect();
                let total = value
                    .get("total")
                    .and_then(JsonValue::as_num)
                    .unwrap_or(0.0) as u64;
                profile.hists.insert(key, (edges, counts, total));
            } else {
                return Err(format!("line {}: unrecognized trace line", index + 1));
            }
        }

        // Close anything still open (truncated trace) at the last vt seen.
        while let Some(open) = stack.pop() {
            profile.force_closed += 1;
            profile.close(open, last_vt, &mut stack);
        }
        Ok(profile)
    }

    /// Applies one `enter`/`exit`/`point` record to the replay stack.
    fn apply_record(&mut self, value: &JsonValue, stack: &mut Vec<Open>, last_vt: &mut f64) {
        let vt = value.get("vt").and_then(JsonValue::as_num).unwrap_or(0.0);
        *last_vt = vt;
        let key = key_of(value, "name");
        match value.get("ev").and_then(JsonValue::as_str) {
            Some("enter") => stack.push(Open {
                key,
                enter_vt: vt,
                child_vt: 0.0,
            }),
            Some("exit") => {
                // Exits are well-nested when matched; pop until the key
                // matches so one lost enter doesn't desync the rest.
                if let Some(depth) = stack.iter().rposition(|open| open.key == key) {
                    while stack.len() > depth + 1 {
                        if let Some(orphan) = stack.pop() {
                            self.force_closed += 1;
                            self.close(orphan, vt, stack);
                        }
                    }
                    if let Some(open) = stack.pop() {
                        self.close(open, vt, stack);
                    }
                } else {
                    self.unmatched_exits += 1;
                }
            }
            _ => {
                *self.points.entry(key).or_insert(0) += 1;
            }
        }
    }

    /// Folds a finished activation into the aggregates and charges its
    /// total time to the parent's child accumulator.
    fn close(&mut self, open: Open, exit_vt: f64, stack: &mut [Open]) {
        let total = (exit_vt - open.enter_vt).max(0.0);
        let exclusive = (total - open.child_vt).max(0.0);
        let stat = self.spans.entry(open.key).or_default();
        stat.count += 1;
        stat.total_vt += total;
        stat.exclusive_vt += exclusive;
        if let Some(parent) = stack.last_mut() {
            parent.child_vt += total;
        }
    }

    /// Exclusive virtual time and span count rolled up by crate — the
    /// `target` prefix before the first `::` (bin targets have no `::`).
    pub fn by_crate(&self) -> BTreeMap<String, SpanStat> {
        let mut out: BTreeMap<String, SpanStat> = BTreeMap::new();
        for ((target, _), stat) in &self.spans {
            let crate_name = target.split("::").next().unwrap_or(target).to_owned();
            let entry = out.entry(crate_name).or_default();
            entry.count += stat.count;
            entry.total_vt += stat.total_vt;
            entry.exclusive_vt += stat.exclusive_vt;
        }
        out
    }

    /// Renders the human-readable report; `top_k` bounds the hot-span
    /// table.
    pub fn render(&self, top_k: usize) -> String {
        let mut out = String::new();
        let total_excl: f64 = self.spans.values().map(|s| s.exclusive_vt).sum();
        let _ = writeln!(
            out,
            "trace: {} span key(s), {} counter(s), {} histogram(s), {} dropped record(s)",
            self.spans.len(),
            self.counters.len(),
            self.hists.len(),
            self.dropped
        );
        if self.unmatched_exits > 0 || self.force_closed > 0 {
            let _ = writeln!(
                out,
                "note: unbalanced trace ({} unmatched exit(s), {} force-closed span(s)) — \
                 timings below are best-effort",
                self.unmatched_exits, self.force_closed
            );
        }

        let mut hot: Vec<(&(String, String), &SpanStat)> = self.spans.iter().collect();
        hot.sort_by(|a, b| {
            b.1.exclusive_vt
                .total_cmp(&a.1.exclusive_vt)
                .then_with(|| a.0.cmp(b.0))
        });
        let shown = hot.len().min(top_k);
        let _ = writeln!(out, "\nhot spans (top {shown} by exclusive virtual time):");
        let _ = writeln!(
            out,
            "  {:<28} {:<28} {:>8} {:>14} {:>14} {:>6}",
            "span", "target", "count", "excl vt", "total vt", "excl%"
        );
        for (key, stat) in hot.iter().take(top_k) {
            let share = if total_excl > 0.0 {
                100.0 * stat.exclusive_vt / total_excl
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "  {:<28} {:<28} {:>8} {:>14.3} {:>14.3} {:>5.1}%",
                key.1, key.0, stat.count, stat.exclusive_vt, stat.total_vt, share
            );
        }

        let _ = writeln!(out, "\nper-crate rollup (exclusive virtual time):");
        let mut crates: Vec<(String, SpanStat)> = self.by_crate().into_iter().collect();
        crates.sort_by(|a, b| {
            b.1.exclusive_vt
                .total_cmp(&a.1.exclusive_vt)
                .then_with(|| a.0.cmp(&b.0))
        });
        let _ = writeln!(
            out,
            "  {:<28} {:>8} {:>14} {:>6}",
            "crate", "spans", "excl vt", "share"
        );
        for (name, stat) in &crates {
            let share = if total_excl > 0.0 {
                100.0 * stat.exclusive_vt / total_excl
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "  {:<28} {:>8} {:>14.3} {:>5.1}%",
                name, stat.count, stat.exclusive_vt, share
            );
        }

        if !self.points.is_empty() {
            let _ = writeln!(out, "\npoint events:");
            for ((target, name), count) in &self.points {
                let _ = writeln!(out, "  {name:<28} {target:<28} {count:>8}");
            }
        }

        if !self.counters.is_empty() {
            let _ = writeln!(out, "\ncounter totals:");
            for ((target, name), total) in &self.counters {
                let _ = writeln!(out, "  {name:<28} {target:<28} {total:>14}");
            }
        }

        for ((target, name), (edges, counts, total)) in &self.hists {
            let _ = writeln!(out, "\nhistogram {name} ({target}, {total} sample(s)):");
            for (i, count) in counts.iter().enumerate() {
                let label = match edges.get(i) {
                    Some(edge) => format!("<= {edge}"),
                    None => "overflow".to_owned(),
                };
                let _ = writeln!(out, "  {label:<14} {count:>10}");
            }
        }
        out
    }
}

/// Extracts the `(target, <name_key>)` pair of a trace line, defaulting
/// missing fields to `"?"` so partial lines still aggregate somewhere
/// visible.
fn key_of(value: &JsonValue, name_key: &str) -> (String, String) {
    let target = value
        .get("target")
        .and_then(JsonValue::as_str)
        .unwrap_or("?")
        .to_owned();
    let name = value
        .get(name_key)
        .and_then(JsonValue::as_str)
        .unwrap_or("?")
        .to_owned();
    (target, name)
}

/// Reads a JSON array of numbers; anything else yields an empty vec.
fn num_array(value: Option<&JsonValue>) -> Vec<f64> {
    match value {
        Some(JsonValue::Arr(items)) => items.iter().filter_map(JsonValue::as_num).collect(),
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stat<'p>(profile: &'p Profile, target: &str, name: &str) -> &'p SpanStat {
        profile
            .spans
            .get(&(target.to_owned(), name.to_owned()))
            .expect("span present")
    }

    #[test]
    fn exclusive_time_subtracts_children() {
        let trace = "\
{\"schema\":1,\"records\":6,\"dropped\":0,\"counters\":0,\"hists\":0}
{\"seq\":0,\"vt\":0,\"ev\":\"enter\",\"target\":\"a\",\"name\":\"outer\"}
{\"seq\":1,\"vt\":2,\"ev\":\"enter\",\"target\":\"a::b\",\"name\":\"inner\"}
{\"seq\":2,\"vt\":5,\"ev\":\"exit\",\"target\":\"a::b\",\"name\":\"inner\"}
{\"seq\":3,\"vt\":10,\"ev\":\"exit\",\"target\":\"a\",\"name\":\"outer\"}
";
        let profile = Profile::from_jsonl(trace).expect("valid trace");
        let outer = stat(&profile, "a", "outer");
        assert_eq!(outer.count, 1);
        assert!((outer.total_vt - 10.0).abs() < 1e-12);
        assert!((outer.exclusive_vt - 7.0).abs() < 1e-12);
        let inner = stat(&profile, "a::b", "inner");
        assert!((inner.exclusive_vt - 3.0).abs() < 1e-12);

        let crates = profile.by_crate();
        assert!((crates.get("a").expect("crate a").exclusive_vt - 10.0).abs() < 1e-12);
        assert_eq!(crates.len(), 1);
    }

    #[test]
    fn tolerates_truncated_and_unmatched_records() {
        // Ring-buffer truncation: an exit whose enter was overwritten,
        // and an enter never exited.
        let trace = "\
{\"seq\":0,\"vt\":1,\"ev\":\"exit\",\"target\":\"a\",\"name\":\"lost\"}
{\"seq\":1,\"vt\":2,\"ev\":\"enter\",\"target\":\"a\",\"name\":\"open\"}
{\"seq\":2,\"vt\":9,\"ev\":\"point\",\"target\":\"a\",\"name\":\"tick\"}
";
        let profile = Profile::from_jsonl(trace).expect("valid trace");
        assert_eq!(profile.unmatched_exits, 1);
        assert_eq!(profile.force_closed, 1);
        let open = stat(&profile, "a", "open");
        assert!((open.total_vt - 7.0).abs() < 1e-12, "closed at last vt");
        assert_eq!(profile.points.len(), 1);
        assert!(profile.render(10).contains("unbalanced trace"));
    }

    #[test]
    fn counters_and_hists_surface_in_render() {
        let trace = "\
{\"schema\":1,\"records\":0,\"dropped\":3,\"counters\":1,\"hists\":1}
{\"counter\":\"sim.jobs\",\"target\":\"anubis_cluster::sim\",\"total\":42}
{\"hist\":\"validator.duration\",\"target\":\"anubis_validator\",\"edges\":[1,5],\"counts\":[2,0,1],\"total\":3}
";
        let profile = Profile::from_jsonl(trace).expect("valid trace");
        assert_eq!(profile.dropped, 3);
        let report = profile.render(5);
        assert!(report.contains("sim.jobs"));
        assert!(report.contains("42"));
        assert!(report.contains("<= 5"));
        assert!(report.contains("overflow"));
    }

    #[test]
    fn rejects_garbage_lines_with_location() {
        let err = Profile::from_jsonl("{\"schema\":1}\nnot json\n").expect_err("must fail");
        assert!(err.starts_with("line 2:"), "error was: {err}");
        let err = Profile::from_jsonl("{\"mystery\":true}\n").expect_err("must fail");
        assert!(err.contains("unrecognized"));
    }
}

//! The checked-in lint allowlist.
//!
//! Some violations are intentional — the `repro` binary reports wall-clock
//! runtimes, so it may use `Instant` — and are recorded in an allowlist
//! file at the workspace root rather than silenced in code. Each
//! non-comment line reads:
//!
//! ```text
//! <check> <path> [substring]
//! ```
//!
//! exempting diagnostics of `check` in `path` (workspace-relative, forward
//! slashes) whose message contains `substring` (any message when omitted).

use crate::checks::Diagnostic;

/// One allowlist entry.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Entry {
    check: String,
    path: String,
    pattern: Option<String>,
}

/// A parsed allowlist, ready to filter diagnostics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Allowlist {
    entries: Vec<Entry>,
}

impl Allowlist {
    /// An allowlist permitting nothing.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Parses allowlist text; returns the 1-based line number and reason
    /// of the first malformed line on failure.
    pub fn parse(text: &str) -> Result<Self, (usize, String)> {
        let mut entries = Vec::new();
        for (index, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(3, char::is_whitespace);
            let (Some(check), Some(path)) = (parts.next(), parts.next()) else {
                return Err((
                    index + 1,
                    "expected `<check> <path> [substring]`".to_owned(),
                ));
            };
            entries.push(Entry {
                check: check.to_owned(),
                path: path.to_owned(),
                pattern: parts.next().map(|p| p.trim().to_owned()),
            });
        }
        Ok(Self { entries })
    }

    /// Whether `diagnostic` is exempted by some entry.
    pub fn permits(&self, diagnostic: &Diagnostic) -> bool {
        self.permit_index(diagnostic).is_some()
    }

    /// The index of the first entry exempting `diagnostic`, for usage
    /// tracking.
    pub fn permit_index(&self, diagnostic: &Diagnostic) -> Option<usize> {
        self.entries.iter().position(|entry| {
            entry.check == diagnostic.check
                && entry.path == diagnostic.path
                && entry
                    .pattern
                    .as_ref()
                    .map_or(true, |pattern| diagnostic.message.contains(pattern))
        })
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the allowlist has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Renders entry `index` in the file's own `<check> <path> [substring]`
    /// format, for stale-entry reports.
    pub fn describe(&self, index: usize) -> String {
        let entry = &self.entries[index];
        match &entry.pattern {
            Some(pattern) => format!("{} {} {}", entry.check, entry.path, pattern),
            None => format!("{} {}", entry.check, entry.path),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(check: &'static str, path: &str, message: &str) -> Diagnostic {
        Diagnostic {
            path: path.to_owned(),
            line: 7,
            check,
            message: message.to_owned(),
        }
    }

    #[test]
    fn parses_comments_blanks_and_entries() {
        let list = Allowlist::parse(
            "# header\n\ndeterminism crates/bench/src/bin/repro.rs Instant\nnan-safety crates/x/src/y.rs\n",
        )
        .expect("valid allowlist");
        assert!(list.permits(&diag(
            "determinism",
            "crates/bench/src/bin/repro.rs",
            "nondeterministic construct `Instant`"
        )));
        assert!(!list.permits(&diag(
            "determinism",
            "crates/bench/src/bin/repro.rs",
            "nondeterministic construct `SystemTime`"
        )));
        assert!(list.permits(&diag("nan-safety", "crates/x/src/y.rs", "anything")));
        assert!(!list.permits(&diag("panic-freedom", "crates/x/src/y.rs", "anything")));
    }

    #[test]
    fn rejects_malformed_lines() {
        let err = Allowlist::parse("determinism\n").unwrap_err();
        assert_eq!(err.0, 1);
    }

    #[test]
    fn empty_permits_nothing() {
        assert!(!Allowlist::empty().permits(&diag("determinism", "a.rs", "m")));
    }
}

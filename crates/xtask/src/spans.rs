//! `#[cfg(test)]` span detection.
//!
//! The determinism and panic-freedom invariants apply to production code
//! only; anything compiled exclusively under `cfg(test)` is exempt. This
//! module locates every `#[cfg(test)]` attribute in a masked source and
//! resolves the byte span of the item it gates (usually `mod tests { … }`)
//! by brace matching — safe because the input is masked, so no brace inside
//! a string or comment can confuse the count.

use crate::mask::MaskedSource;

/// An inclusive 1-based line range compiled only under `cfg(test)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TestSpan {
    /// First line of the span (the attribute itself).
    pub start_line: usize,
    /// Last line of the span (the item's closing brace or semicolon).
    pub end_line: usize,
}

impl TestSpan {
    /// Whether 1-based `line` falls inside the span.
    pub fn contains(&self, line: usize) -> bool {
        (self.start_line..=self.end_line).contains(&line)
    }
}

const CFG_TEST: &[u8] = b"#[cfg(test)]";

/// Finds every `#[cfg(test)]`-gated item in `source` and returns the line
/// spans its checks must skip. Items whose braces never close (mid-edit
/// files) extend to the end of the file.
pub fn test_spans(source: &MaskedSource) -> Vec<TestSpan> {
    let bytes = &source.masked;
    let mut spans = Vec::new();
    let mut from = 0usize;
    while let Some(found) = find_from(bytes, CFG_TEST, from) {
        let start_line = source.line_of(found);
        let end = item_end(bytes, found + CFG_TEST.len());
        let end_line = source.line_of(end.min(bytes.len().saturating_sub(1)));
        spans.push(TestSpan {
            start_line,
            end_line,
        });
        from = end + 1;
    }
    spans
}

/// Whether 1-based `line` is inside any of `spans`.
pub fn in_test_span(spans: &[TestSpan], line: usize) -> bool {
    spans.iter().any(|span| span.contains(line))
}

/// First occurrence of `needle` in `haystack` at or after `from`.
fn find_from(haystack: &[u8], needle: &[u8], from: usize) -> Option<usize> {
    if from >= haystack.len() {
        return None;
    }
    haystack[from..]
        .windows(needle.len())
        .position(|window| window == needle)
        .map(|position| from + position)
}

/// Byte offset of the end of the item that starts after offset `p`:
/// skips whitespace and further attributes, then either the matching
/// closing brace of the item's block or the terminating semicolon.
fn item_end(bytes: &[u8], mut p: usize) -> usize {
    // Skip whitespace and any additional `#[…]` attributes.
    loop {
        while p < bytes.len() && bytes[p].is_ascii_whitespace() {
            p += 1;
        }
        if p + 1 < bytes.len() && bytes[p] == b'#' && bytes[p + 1] == b'[' {
            let mut depth = 0usize;
            while p < bytes.len() {
                match bytes[p] {
                    b'[' => depth += 1,
                    b']' => {
                        depth -= 1;
                        if depth == 0 {
                            p += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                p += 1;
            }
        } else {
            break;
        }
    }
    // The item: ends at the first `;` seen before any `{`, or at the brace
    // that closes the first `{`.
    let mut depth = 0usize;
    while p < bytes.len() {
        match bytes[p] {
            b';' if depth == 0 => return p,
            b'{' => depth += 1,
            b'}' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return p;
                }
            }
            _ => {}
        }
        p += 1;
    }
    bytes.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mask::mask;

    #[test]
    fn finds_test_module_span() {
        let src = "pub fn real() {}\n\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\n";
        let spans = test_spans(&mask(src));
        assert_eq!(
            spans,
            vec![TestSpan {
                start_line: 3,
                end_line: 6
            }]
        );
        assert!(in_test_span(&spans, 4));
        assert!(!in_test_span(&spans, 1));
    }

    #[test]
    fn handles_extra_attributes_and_items_without_braces() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nuse std::fmt::Debug;\nfn live() {}\n";
        let spans = test_spans(&mask(src));
        assert_eq!(
            spans,
            vec![TestSpan {
                start_line: 1,
                end_line: 3
            }]
        );
        assert!(!in_test_span(&spans, 4));
    }

    #[test]
    fn nested_braces_do_not_end_early() {
        let src = "#[cfg(test)]\nmod tests {\n    fn a() { if true { } }\n    fn b() {}\n}\nfn after() {}\n";
        let spans = test_spans(&mask(src));
        assert_eq!(
            spans,
            vec![TestSpan {
                start_line: 1,
                end_line: 5
            }]
        );
    }

    #[test]
    fn braces_inside_strings_are_ignored() {
        let src = "#[cfg(test)]\nmod tests {\n    const S: &str = \"}\";\n}\nfn after() {}\n";
        let spans = test_spans(&mask(src));
        assert_eq!(
            spans,
            vec![TestSpan {
                start_line: 1,
                end_line: 4
            }]
        );
    }

    #[test]
    fn multiple_spans() {
        let src = "#[cfg(test)]\nmod a {}\nfn mid() {}\n#[cfg(test)]\nmod b {}\n";
        let spans = test_spans(&mask(src));
        assert_eq!(spans.len(), 2);
        assert!(!in_test_span(&spans, 3));
    }
}

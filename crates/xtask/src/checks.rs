//! The five workspace invariants.
//!
//! Every check runs over masked source (see [`crate::mask`]) so tokens in
//! comments and string literals never trip it, and skips `#[cfg(test)]`
//! spans plus files under `tests/` or `benches/` where the invariants do
//! not apply:
//!
//! 1. **determinism** — simulation code must derive all randomness and time
//!    from explicit seeds; `thread_rng`, `from_entropy`, `SystemTime`, and
//!    `Instant` are forbidden outside test code (the `repro` binary's
//!    wall-clock reporting is exempted via the checked-in allowlist).
//! 2. **panic-freedom** — the fleet-facing crates must not `.unwrap()`,
//!    `.expect(…)`, `panic!` or `todo!` in library code; fallible paths
//!    return `Result`.
//! 3. **nan-safety** — no `partial_cmp(…).unwrap()` comparator chains (use
//!    `f64::total_cmp`) and no `==`/`!=` against float literals other than
//!    the exact sentinels `0.0` and `1.0`.
//! 4. **doc-coverage** — every `src/` module opens with `//!` docs and
//!    every plain-`pub` item carries a doc comment.
//! 5. **raw-threading** — `thread::spawn` / `thread::scope` are forbidden
//!    outside tests: all parallelism goes through the `anubis-parallel`
//!    executor, whose chunking keeps results bit-identical at any thread
//!    count (the executor itself is exempted via the allowlist).

use crate::mask::{mask, MaskedSource};
use crate::model::{tokenize, TokenKind};
use crate::spans::{in_test_span, test_spans, TestSpan};
use std::fmt;

/// Crates whose library code must be panic-free: everything that runs in
/// the validation path on fleet nodes.
pub const GATED_CRATES: &[&str] = &[
    "arena",
    "benchsuite",
    "validator",
    "selector",
    "cluster",
    "hwsim",
    "netsim",
    "lifecycle",
];

/// Identifiers forbidden by the determinism invariant.
const NONDETERMINISTIC_WORDS: &[&str] = &["thread_rng", "from_entropy", "SystemTime", "Instant"];

/// One lint finding, pointing at a file and line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Path relative to the workspace root, forward slashes.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Which check fired (`determinism`, `panic-freedom`, `nan-safety`,
    /// `doc-coverage`, `raw-threading`).
    pub check: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.check, self.message
        )
    }
}

/// How the checks treat a file, derived from its workspace-relative path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileClass {
    /// Entirely test code (under a `tests/` or `benches/` directory):
    /// every invariant is waived.
    pub is_test_code: bool,
    /// Library/binary source (under a `src/` directory): doc coverage and
    /// NaN-safety apply.
    pub in_src: bool,
    /// Library code of a panic-gated crate: panic-freedom applies.
    pub panic_gated: bool,
}

/// Classifies a workspace-relative path (forward slashes).
pub fn classify(rel_path: &str) -> FileClass {
    let components: Vec<&str> = rel_path.split('/').collect();
    let is_test_code = components.iter().any(|c| *c == "tests" || *c == "benches");
    let in_src = !is_test_code && components.contains(&"src");
    let panic_gated = in_src
        && components.first() == Some(&"crates")
        && components.get(1).is_some_and(|c| GATED_CRATES.contains(c));
    FileClass {
        is_test_code,
        in_src,
        panic_gated,
    }
}

/// Runs every applicable check on one file and returns its diagnostics,
/// sorted by line.
pub fn check_file(rel_path: &str, source: &str) -> Vec<Diagnostic> {
    let class = classify(rel_path);
    if class.is_test_code {
        return Vec::new();
    }
    let masked = mask(source);
    let spans = test_spans(&masked);
    let mut diags = Vec::new();

    check_determinism(rel_path, &masked, &spans, &mut diags);
    check_raw_threading(rel_path, &masked, &spans, &mut diags);
    if class.panic_gated {
        check_panic_freedom(rel_path, &masked, &spans, &mut diags);
    }
    if class.in_src {
        check_nan_safety(rel_path, &masked, &spans, &mut diags);
        check_doc_coverage(rel_path, source, &masked, &spans, &mut diags);
    }
    diags.sort_by(|a, b| (a.line, a.check).cmp(&(b.line, b.check)));
    diags
}

fn push(
    diags: &mut Vec<Diagnostic>,
    path: &str,
    line: usize,
    check: &'static str,
    message: String,
) {
    diags.push(Diagnostic {
        path: path.to_owned(),
        line,
        check,
        message,
    });
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Byte offsets where `word` occurs in `text` with non-identifier bytes on
/// both sides.
fn word_occurrences(text: &[u8], word: &[u8]) -> Vec<usize> {
    let mut found = Vec::new();
    let mut from = 0usize;
    while from + word.len() <= text.len() {
        let Some(position) = text[from..]
            .windows(word.len())
            .position(|window| window == word)
        else {
            break;
        };
        let at = from + position;
        let clear_before = at == 0 || !is_ident_byte(text[at - 1]);
        let clear_after = at + word.len() >= text.len() || !is_ident_byte(text[at + word.len()]);
        if clear_before && clear_after {
            found.push(at);
        }
        from = at + word.len();
    }
    found
}

/// Whether `text[at..]` starts with `.name` followed, after optional
/// whitespace, by `(` — i.e. a call of method `name`.
fn is_method_call(text: &[u8], at: usize, name: &[u8]) -> bool {
    if text.get(at) != Some(&b'.') || !text[at + 1..].starts_with(name) {
        return false;
    }
    let mut p = at + 1 + name.len();
    if p < text.len() && is_ident_byte(text[p]) {
        return false; // e.g. `.unwrap_or`
    }
    while p < text.len() && text[p].is_ascii_whitespace() {
        p += 1;
    }
    text.get(p) == Some(&b'(')
}

/// Offsets of every `.name(…)` call in `text`.
fn method_calls(text: &[u8], name: &[u8]) -> Vec<usize> {
    word_occurrences(text, name)
        .into_iter()
        .filter(|&at| at > 0 && is_method_call(text, at - 1, name))
        .map(|at| at - 1)
        .collect()
}

fn check_determinism(
    path: &str,
    source: &MaskedSource,
    spans: &[TestSpan],
    diags: &mut Vec<Diagnostic>,
) {
    for word in NONDETERMINISTIC_WORDS {
        for at in word_occurrences(&source.masked, word.as_bytes()) {
            let line = source.line_of(at);
            if !in_test_span(spans, line) {
                push(
                    diags,
                    path,
                    line,
                    "determinism",
                    format!(
                        "nondeterministic construct `{word}`: derive randomness \
                         and time from explicit seeds"
                    ),
                );
            }
        }
    }
}

/// Functions of the `thread` module the shared executor wraps.
const RAW_THREADING_FNS: &[&str] = &["spawn", "scope"];

fn check_raw_threading(
    path: &str,
    source: &MaskedSource,
    spans: &[TestSpan],
    diags: &mut Vec<Diagnostic>,
) {
    // Token-level matching: the `thread` / `::` / `spawn|scope` triplet
    // catches both `thread::spawn(..)` and `std::thread::spawn(..)` at any
    // spacing or line wrapping, while identifiers that merely contain
    // "thread" (e.g. `per_thread_scope`) tokenize as a single ident and
    // never match.
    let tokens = tokenize(&source.masked);
    for window in tokens.windows(3) {
        let [head, sep, tail] = window else {
            continue;
        };
        if head.kind == TokenKind::Ident
            && head.text == "thread"
            && sep.text == "::"
            && tail.kind == TokenKind::Ident
            && RAW_THREADING_FNS.contains(&tail.text.as_str())
        {
            let line = source.line_of(head.offset);
            if !in_test_span(spans, line) {
                push(
                    diags,
                    path,
                    line,
                    "raw-threading",
                    format!(
                        "raw `thread::{}`: use the `anubis-parallel` executor so \
                         results stay bit-identical at any thread count",
                        tail.text
                    ),
                );
            }
        }
    }
}

fn check_panic_freedom(
    path: &str,
    source: &MaskedSource,
    spans: &[TestSpan],
    diags: &mut Vec<Diagnostic>,
) {
    let text = &source.masked;
    let mut hits: Vec<(usize, String)> = Vec::new();
    for method in ["unwrap", "expect"] {
        for at in method_calls(text, method.as_bytes()) {
            hits.push((at, format!(".{method}()")));
        }
    }
    for mac in ["panic", "todo"] {
        for at in word_occurrences(text, mac.as_bytes()) {
            if text.get(at + mac.len()) == Some(&b'!') {
                hits.push((at, format!("{mac}!")));
            }
        }
    }
    for (at, what) in hits {
        let line = source.line_of(at);
        if !in_test_span(spans, line) {
            push(
                diags,
                path,
                line,
                "panic-freedom",
                format!("panicking construct `{what}` in fleet-facing library code"),
            );
        }
    }
}

fn check_nan_safety(
    path: &str,
    source: &MaskedSource,
    spans: &[TestSpan],
    diags: &mut Vec<Diagnostic>,
) {
    let text = &source.masked;
    // `partial_cmp(…)` chained into an unwrap/expect within the statement.
    for at in word_occurrences(text, b"partial_cmp") {
        let line = source.line_of(at);
        if in_test_span(spans, line) || is_fn_definition(text, at) {
            continue;
        }
        let rest = &text[at + b"partial_cmp".len()..];
        let statement_end = rest
            .iter()
            .position(|&b| b == b';' || b == b'{' || b == b'}')
            .unwrap_or(rest.len());
        let statement = &rest[..statement_end];
        if method_calls(statement, b"unwrap")
            .into_iter()
            .chain(method_calls(statement, b"expect"))
            .next()
            .is_some()
        {
            push(
                diags,
                path,
                line,
                "nan-safety",
                "NaN-unsafe `partial_cmp(..).unwrap()` chain: use `f64::total_cmp`".to_owned(),
            );
        }
    }
    // `==` / `!=` against a float literal (other than the 0.0 / 1.0
    // sentinels, which code only compares against when the value was
    // assigned exactly).
    for at in equality_operators(text) {
        let line = source.line_of(at);
        if in_test_span(spans, line) {
            continue;
        }
        let literal = float_literal_after(text, at + 2).or_else(|| float_literal_before(text, at));
        if let Some(literal) = literal {
            if literal != "0.0" && literal != "1.0" {
                push(
                    diags,
                    path,
                    line,
                    "nan-safety",
                    format!(
                        "float equality against literal `{literal}`: compare \
                         with a tolerance or use integer grid indices"
                    ),
                );
            }
        }
    }
}

/// Whether the `partial_cmp` at `at` is a `fn partial_cmp` definition
/// (trait impls are allowed; they are the place total orders are built).
fn is_fn_definition(text: &[u8], at: usize) -> bool {
    let mut p = at;
    while p > 0 && text[p - 1].is_ascii_whitespace() {
        p -= 1;
    }
    p >= 2 && &text[p - 2..p] == b"fn"
}

/// Offsets of standalone `==` and `!=` operators.
fn equality_operators(text: &[u8]) -> Vec<usize> {
    let mut found = Vec::new();
    for at in 0..text.len().saturating_sub(1) {
        let pair = &text[at..at + 2];
        let standalone = (pair == b"==" || pair == b"!=")
            && (at == 0 || !matches!(text[at - 1], b'=' | b'!' | b'<' | b'>'))
            && text.get(at + 2) != Some(&b'=');
        if standalone {
            found.push(at);
        }
    }
    found
}

/// Parses a float literal (`12.5`, `-0.25`) starting at or after `from`
/// (skipping whitespace and an optional sign).
fn float_literal_after(text: &[u8], from: usize) -> Option<String> {
    let mut p = from;
    while p < text.len() && text[p].is_ascii_whitespace() {
        p += 1;
    }
    if text.get(p) == Some(&b'-') {
        p += 1;
    }
    let start = p;
    while p < text.len() && text[p].is_ascii_digit() {
        p += 1;
    }
    if p == start || text.get(p) != Some(&b'.') {
        return None;
    }
    p += 1;
    let fraction_start = p;
    while p < text.len() && text[p].is_ascii_digit() {
        p += 1;
    }
    if p == fraction_start {
        return None; // `3.` or a range like `0..` — not a float comparison
    }
    String::from_utf8(text[start..p].to_vec()).ok()
}

/// Parses a float literal ending just before the operator at `operator`.
fn float_literal_before(text: &[u8], operator: usize) -> Option<String> {
    let mut p = operator;
    while p > 0 && text[p - 1].is_ascii_whitespace() {
        p -= 1;
    }
    let end = p;
    while p > 0 && (text[p - 1].is_ascii_digit() || text[p - 1] == b'.') {
        p -= 1;
    }
    let literal = &text[p..end];
    let valid = literal.contains(&b'.')
        && literal.first().is_some_and(u8::is_ascii_digit)
        && literal.last().is_some_and(u8::is_ascii_digit)
        // Exclude tuple-field access (`pair.0 == …`) and range endpoints.
        && (p == 0 || (!is_ident_byte(text[p - 1]) && text[p - 1] != b'.'));
    if valid {
        String::from_utf8(literal.to_vec()).ok()
    } else {
        None
    }
}

fn check_doc_coverage(
    path: &str,
    source: &str,
    masked: &MaskedSource,
    spans: &[TestSpan],
    diags: &mut Vec<Diagnostic>,
) {
    // Module-level docs: a `//!` block must precede the first code line.
    let mut has_module_doc = false;
    for line in source.lines() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("//!") {
            has_module_doc = true;
            break;
        }
        if trimmed.is_empty() || trimmed.starts_with("#![") || trimmed.starts_with("//") {
            continue;
        }
        break;
    }
    if !has_module_doc {
        push(
            diags,
            path,
            1,
            "doc-coverage",
            "missing module-level doc comment (`//!`)".to_owned(),
        );
    }

    // Public items: every plain-`pub` item needs a `///` doc comment or a
    // `#[doc…]` attribute directly above (attributes in between are fine).
    let masked_text = String::from_utf8_lossy(&masked.masked).into_owned();
    let masked_lines: Vec<&str> = masked_text.lines().collect();
    for (index, masked_line) in masked_lines.iter().enumerate() {
        let line = index + 1;
        if in_test_span(spans, line) {
            continue;
        }
        let trimmed = masked_line.trim_start();
        let Some(item) = trimmed.strip_prefix("pub ") else {
            continue; // `pub(crate)` and friends are not public API
        };
        let keyword = item.split_whitespace().next().unwrap_or("");
        if keyword == "use" || keyword == "mod" {
            // Re-exports inherit docs; module files carry their own `//!`.
            continue;
        }
        let mut above = index; // 0-based index of the line above `line`
        let mut documented = false;
        while above > 0 {
            let candidate = masked_lines[above - 1].trim();
            if candidate.starts_with("#[") || candidate.ends_with(")]") {
                if candidate.contains("#[doc") {
                    documented = true;
                    break;
                }
                above -= 1;
                continue;
            }
            documented = masked.is_doc_line(above);
            break;
        }
        if !documented {
            push(
                diags,
                path,
                line,
                "doc-coverage",
                format!("public item `pub {keyword}` lacks a doc comment"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines_for(check: &str, diags: &[Diagnostic]) -> Vec<usize> {
        diags
            .iter()
            .filter(|d| d.check == check)
            .map(|d| d.line)
            .collect()
    }

    #[test]
    fn classify_recognizes_scopes() {
        assert!(classify("crates/hwsim/src/node.rs").panic_gated);
        assert!(!classify("crates/metrics/src/stats.rs").panic_gated);
        assert!(classify("crates/metrics/src/stats.rs").in_src);
        assert!(classify("crates/hwsim/tests/integration.rs").is_test_code);
        assert!(classify("crates/bench/benches/micro.rs").is_test_code);
        assert!(classify("src/lib.rs").in_src);
    }

    #[test]
    fn determinism_flags_wall_clock_outside_tests() {
        let src = "//! m\nuse std::time::Instant;\n#[cfg(test)]\nmod tests {\n    use std::time::Instant;\n}\n";
        let diags = check_file("crates/core/src/x.rs", src);
        assert_eq!(lines_for("determinism", &diags), vec![2]);
    }

    #[test]
    fn determinism_ignores_comments_and_strings() {
        let src = "//! Instant is fine here\nconst X: &str = \"Instant\";\n";
        let diags = check_file("crates/core/src/x.rs", src);
        assert!(lines_for("determinism", &diags).is_empty());
    }

    #[test]
    fn panic_freedom_only_in_gated_crates() {
        let src = "//! m\n/// d\npub fn f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n";
        assert_eq!(
            lines_for("panic-freedom", &check_file("crates/hwsim/src/x.rs", src)),
            vec![4]
        );
        assert!(lines_for("panic-freedom", &check_file("crates/metrics/src/x.rs", src)).is_empty());
    }

    #[test]
    fn panic_freedom_skips_unwrap_or_variants() {
        let src = "//! m\nfn f(x: Option<u8>) -> u8 {\n    x.unwrap_or(0)\n}\n";
        assert!(lines_for("panic-freedom", &check_file("crates/hwsim/src/x.rs", src)).is_empty());
    }

    #[test]
    fn nan_safety_flags_partial_cmp_chain() {
        let src =
            "//! m\nfn f(v: &mut [f64]) {\n    v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n}\n";
        assert_eq!(
            lines_for("nan-safety", &check_file("crates/metrics/src/x.rs", src)),
            vec![3]
        );
    }

    #[test]
    fn nan_safety_allows_total_cmp_and_definitions() {
        let src = "//! m\nfn f(v: &mut [f64]) {\n    v.sort_by(f64::total_cmp);\n}\nimpl X {\n    fn partial_cmp(&self) {}\n}\n";
        assert!(lines_for("nan-safety", &check_file("crates/metrics/src/x.rs", src)).is_empty());
    }

    #[test]
    fn nan_safety_flags_float_literal_equality() {
        let src = "//! m\nfn f(x: f64) -> bool {\n    x == 24.5\n}\nfn g(x: f64) -> bool {\n    0.25 != x\n}\nfn ok(x: f64) -> bool {\n    x == 0.0 || x == 1.0\n}\n";
        assert_eq!(
            lines_for("nan-safety", &check_file("crates/metrics/src/x.rs", src)),
            vec![3, 6]
        );
    }

    #[test]
    fn nan_safety_ignores_tuple_fields_and_ints() {
        let src = "//! m\nfn f(p: (f64, u8)) -> bool {\n    p.1 == 3 && p.0 >= 0.5\n}\n";
        assert!(lines_for("nan-safety", &check_file("crates/metrics/src/x.rs", src)).is_empty());
    }

    #[test]
    fn raw_threading_flags_spawn_and_scope_outside_tests() {
        let src = "//! m\nfn f() {\n    std::thread::spawn(|| ());\n    thread::scope(|s| ());\n}\n#[cfg(test)]\nmod tests {\n    fn g() {\n        std::thread::spawn(|| ());\n    }\n}\n";
        let diags = check_file("crates/core/src/x.rs", src);
        assert_eq!(lines_for("raw-threading", &diags), vec![3, 4]);
    }

    #[test]
    fn raw_threading_ignores_other_thread_identifiers() {
        let src = "//! m\nfn f(hw_thread: u8) -> u8 {\n    let per_thread_scope = hw_thread;\n    per_thread_scope\n}\n";
        assert!(lines_for("raw-threading", &check_file("crates/core/src/x.rs", src)).is_empty());
    }

    #[test]
    fn raw_threading_matches_across_line_wraps() {
        // rustfmt can wrap a long path after the `::`; token matching still
        // sees the `thread` `::` `spawn` triplet.
        let src = "//! m\nfn f() {\n    std::thread::\n        spawn(|| ());\n}\n";
        let diags = check_file("crates/core/src/x.rs", src);
        assert_eq!(lines_for("raw-threading", &diags), vec![3]);
    }

    #[test]
    fn doc_coverage_requires_module_and_item_docs() {
        let src =
            "use std::fmt;\n\npub struct Undocumented;\n\n/// Documented.\npub struct Fine;\n";
        let diags = check_file("crates/core/src/x.rs", src);
        assert_eq!(lines_for("doc-coverage", &diags), vec![1, 3]);
    }

    #[test]
    fn doc_coverage_sees_through_attributes() {
        let src = "//! m\n/// Documented.\n#[derive(Debug)]\npub struct Fine;\npub use std::fmt;\n";
        assert!(lines_for("doc-coverage", &check_file("crates/core/src/x.rs", src)).is_empty());
    }

    #[test]
    fn test_files_are_exempt() {
        let src = "use std::time::Instant;\nfn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert!(check_file("crates/hwsim/tests/e2e.rs", src).is_empty());
    }
}

//! Comment- and literal-masking lexer.
//!
//! The checks in this crate are lexical: they search for forbidden tokens
//! (`.unwrap()`, `Instant`, float `==`, …). Searching raw source would
//! false-positive on every doc comment and string literal that *mentions*
//! a forbidden construct, so all checks run over a masked copy of the file
//! in which comments, string/char literals, and raw strings are replaced
//! byte-for-byte with spaces. Newlines are preserved, so byte offsets and
//! line numbers in the masked text match the original exactly.

/// A source file with comments and literals blanked out.
pub struct MaskedSource {
    /// The masked text: same byte length as the input, pure-code bytes
    /// preserved, comment/literal bytes replaced with `b' '`, newlines kept.
    pub masked: Vec<u8>,
    /// Byte offset where each line starts (index 0 = line 1).
    line_starts: Vec<usize>,
    /// 1-based lines on which a doc comment (`///`, `//!`, `/**`, `/*!`)
    /// begins. Used by the doc-coverage check.
    pub doc_lines: Vec<bool>,
}

impl MaskedSource {
    /// 1-based line number containing byte `offset`.
    pub fn line_of(&self, offset: usize) -> usize {
        match self.line_starts.binary_search(&offset) {
            Ok(index) => index + 1,
            Err(index) => index,
        }
    }

    /// Whether a doc comment begins on 1-based line `line`.
    pub fn is_doc_line(&self, line: usize) -> bool {
        self.doc_lines.get(line - 1).copied().unwrap_or(false)
    }
}

/// Lexer state while scanning.
enum State {
    Code,
    LineComment,
    BlockComment { depth: usize },
    Str,
    RawStr { hashes: usize },
    CharLit,
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Masks `source`, blanking comments and string/char literals while
/// preserving byte offsets and newlines.
#[allow(clippy::too_many_lines)]
pub fn mask(source: &str) -> MaskedSource {
    let bytes = source.as_bytes();
    let mut masked = Vec::with_capacity(bytes.len());
    let mut line_starts = vec![0usize];
    let mut doc_lines = Vec::new();
    let mut current_line_is_doc = false;
    let mut state = State::Code;
    let mut i = 0usize;

    macro_rules! emit_masked {
        ($b:expr) => {
            masked.push(if $b == b'\n' { b'\n' } else { b' ' })
        };
    }

    while i < bytes.len() {
        let b = bytes[i];
        if b == b'\n' {
            line_starts.push(i + 1);
            doc_lines.push(current_line_is_doc);
            current_line_is_doc = false;
        }
        match state {
            State::Code => {
                let next = bytes.get(i + 1).copied();
                if b == b'/' && next == Some(b'/') {
                    if matches!(bytes.get(i + 2), Some(b'/' | b'!')) {
                        current_line_is_doc = true;
                    }
                    state = State::LineComment;
                    emit_masked!(b);
                } else if b == b'/' && next == Some(b'*') {
                    if matches!(bytes.get(i + 2), Some(b'*' | b'!'))
                        && bytes.get(i + 3) != Some(&b'/')
                    {
                        current_line_is_doc = true;
                    }
                    state = State::BlockComment { depth: 1 };
                    emit_masked!(b);
                    emit_masked!(next.unwrap_or(b' '));
                    i += 2;
                    continue;
                } else if b == b'"' {
                    state = State::Str;
                    emit_masked!(b);
                } else if (b == b'r' || b == b'b')
                    && (i == 0 || !is_ident_byte(bytes[i - 1]))
                    && raw_string_hashes(&bytes[i..]).is_some()
                {
                    let (prefix, hashes) = raw_string_hashes(&bytes[i..]).unwrap_or((0, 0));
                    for offset in 0..prefix {
                        emit_masked!(bytes[i + offset]);
                    }
                    i += prefix;
                    state = State::RawStr { hashes };
                    continue;
                } else if b == b'b'
                    && next == Some(b'"')
                    && (i == 0 || !is_ident_byte(bytes[i - 1]))
                {
                    emit_masked!(b);
                    emit_masked!(b'"');
                    i += 2;
                    state = State::Str;
                    continue;
                } else if b == b'\'' && char_literal_len(&bytes[i..]).is_some() {
                    state = State::CharLit;
                    emit_masked!(b);
                } else {
                    masked.push(b);
                }
            }
            State::LineComment => {
                emit_masked!(b);
                if b == b'\n' {
                    state = State::Code;
                }
            }
            State::BlockComment { depth } => {
                let next = bytes.get(i + 1).copied();
                if b == b'/' && next == Some(b'*') {
                    state = State::BlockComment { depth: depth + 1 };
                    emit_masked!(b);
                    emit_masked!(b'*');
                    i += 2;
                    continue;
                }
                if b == b'*' && next == Some(b'/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment { depth: depth - 1 }
                    };
                    emit_masked!(b);
                    emit_masked!(b'/');
                    i += 2;
                    continue;
                }
                emit_masked!(b);
            }
            State::Str => {
                if b == b'\\' {
                    emit_masked!(b);
                    if let Some(&escaped) = bytes.get(i + 1) {
                        if escaped == b'\n' {
                            line_starts.push(i + 2);
                            doc_lines.push(false);
                        }
                        emit_masked!(escaped);
                        i += 2;
                        continue;
                    }
                } else {
                    emit_masked!(b);
                    if b == b'"' {
                        state = State::Code;
                    }
                }
            }
            State::RawStr { hashes } => {
                emit_masked!(b);
                if b == b'"'
                    && bytes[i + 1..]
                        .iter()
                        .take(hashes)
                        .filter(|&&h| h == b'#')
                        .count()
                        == hashes
                {
                    for offset in 0..hashes {
                        emit_masked!(bytes[i + 1 + offset]);
                    }
                    i += hashes;
                    state = State::Code;
                }
            }
            State::CharLit => {
                if b == b'\\' {
                    emit_masked!(b);
                    if let Some(&escaped) = bytes.get(i + 1) {
                        emit_masked!(escaped);
                        i += 2;
                        continue;
                    }
                } else {
                    emit_masked!(b);
                    if b == b'\'' {
                        state = State::Code;
                    }
                }
            }
        }
        i += 1;
    }
    doc_lines.push(current_line_is_doc);

    MaskedSource {
        masked,
        line_starts,
        doc_lines,
    }
}

/// If `bytes` starts a raw string (`r"`, `r#"`, `br"`, …), returns the
/// prefix length up to and including the opening quote plus the hash count.
fn raw_string_hashes(bytes: &[u8]) -> Option<(usize, usize)> {
    let mut p = 0usize;
    if bytes.first() == Some(&b'b') {
        p += 1;
    }
    if bytes.get(p) != Some(&b'r') {
        return None;
    }
    p += 1;
    let mut hashes = 0usize;
    while bytes.get(p) == Some(&b'#') {
        hashes += 1;
        p += 1;
    }
    if bytes.get(p) == Some(&b'"') {
        Some((p + 1, hashes))
    } else {
        None
    }
}

/// If `bytes` (starting at a `'`) opens a char literal rather than a
/// lifetime, returns the literal's byte length. A `'` starts a char literal
/// when it is escaped (`'\n'`) or when a closing `'` follows within the
/// next one-to-four bytes (`'a'`, `'é'`); otherwise it is a lifetime.
fn char_literal_len(bytes: &[u8]) -> Option<usize> {
    debug_assert_eq!(bytes.first(), Some(&b'\''));
    if bytes.get(1) == Some(&b'\\') {
        return Some(2);
    }
    let first = *bytes.get(1)?;
    if first == b'\'' {
        return None;
    }
    // A char literal holds exactly one char before the closing quote;
    // anything else (`'a` in `<'a>`, `'outer:`) is a lifetime or label.
    let width = if first < 0x80 {
        1
    } else if first < 0xE0 {
        2
    } else if first < 0xF0 {
        3
    } else {
        4
    };
    (bytes.get(1 + width) == Some(&b'\'')).then_some(width + 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn masked_str(source: &str) -> String {
        String::from_utf8(mask(source).masked).unwrap()
    }

    #[test]
    fn preserves_plain_code() {
        assert_eq!(masked_str("let x = 1 + 2;"), "let x = 1 + 2;");
    }

    #[test]
    fn masks_line_comments_but_keeps_newlines() {
        let out = masked_str("a // unwrap() here\nb");
        assert_eq!(out, "a                 \nb");
    }

    #[test]
    fn masks_block_comments_with_nesting() {
        let out = masked_str("a /* outer /* inner */ still */ b");
        assert_eq!(out, "a                               b");
    }

    #[test]
    fn masks_strings_and_escapes() {
        let out = masked_str(r#"call("has \" unwrap()") + 1"#);
        assert_eq!(out, "call(                 ) + 1");
    }

    #[test]
    fn masks_raw_strings() {
        let out = masked_str(r###"x = r#"panic!("no")"# ;"###);
        assert_eq!(out, "x =                   ;");
    }

    #[test]
    fn masks_char_literals_but_not_lifetimes() {
        assert_eq!(masked_str("let c = 'x';"), "let c =    ;");
        assert_eq!(masked_str(r"let c = '\n';"), "let c =     ;");
        assert_eq!(
            masked_str("fn f<'a>(x: &'a str) {}"),
            "fn f<'a>(x: &'a str) {}"
        );
    }

    #[test]
    fn multibyte_bytes_become_spaces() {
        let out = masked_str("x // é\ny");
        assert_eq!(out.len(), "x // é\ny".len());
        assert_eq!(out, "x      \ny"); // é is two bytes, so two spaces
    }

    #[test]
    fn records_doc_lines() {
        let m = mask("/// doc\npub fn f() {}\n// plain\n//! inner\n");
        assert!(m.is_doc_line(1));
        assert!(!m.is_doc_line(2));
        assert!(!m.is_doc_line(3));
        assert!(m.is_doc_line(4));
    }

    #[test]
    fn line_of_maps_offsets() {
        let m = mask("ab\ncd\nef");
        assert_eq!(m.line_of(0), 1);
        assert_eq!(m.line_of(2), 1);
        assert_eq!(m.line_of(3), 2);
        assert_eq!(m.line_of(6), 3);
    }
}

//! Interprocedural dataflow over the call graph: per-function summaries
//! propagated to a fixpoint.
//!
//! The per-function passes (A003's direct allocation scan, A004's direct
//! determinism scan) answer "does this function *itself* do X"; the
//! summaries here answer "can this function *transitively* do X". Each
//! function gets a summary per effect kind — the five nondeterminism
//! [`Taint`]s plus allocation — holding:
//!
//! - the **direct site**, when the function's own tokens touch the effect
//!   (at most one per taint kind, every site for allocations), and
//! - the **minimum call distance** to any function with a direct site:
//!   `0` when the function has one itself, `1 + min over callees`
//!   otherwise, `usize::MAX` when no call path reaches the effect.
//!
//! The distance lattice makes the fixpoint trivial: the equations are
//! exactly single-source shortest paths over the *reversed* call graph
//! (every direct-site function is a source), so one BFS per effect kind
//! computes the unique least fixpoint — recursion and call cycles need no
//! special casing, and the per-kind cost is `O(nodes + edges)`. Witness
//! paths follow the BFS predecessor links, along which the distance
//! strictly decreases, so a reported call path always terminates at a
//! function with a direct site and is deterministic across runs (BFS
//! visits sorted adjacency).
//!
//! **Noise suppression** happens at *extraction*, not propagation: a crate
//! sanctioned for an effect (the `anubis-config` env shim, the
//! `anubis-obs` wall-clock facade, `anubis-parallel`'s thread-count probe)
//! simply records no direct site, so nothing propagates to its callers.
//! This is what lets every caller of `anubis_parallel::map_chunks` stay
//! clean: the executor reads `ANUBIS_THREADS` through the shim, and the
//! determinism contract makes the thread count unobservable in results.
//!
//! Consumers: A003 (allocation summaries replace its per-pass token
//! scan), A006 (taint distances from deterministic roots), A007 (taint
//! distances of functions called from `anubis-parallel` closures).

use crate::callgraph::{CallGraph, Reach};
use crate::model::{CallKind, FnItem, TokenKind, Workspace};
use crate::passes::AnalysisConfig;

/// The nondeterminism effects tracked interprocedurally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Taint {
    /// `std::env::var`/`vars` outside the sanctioned config shim.
    EnvRead,
    /// `Instant`/`SystemTime` outside the observability facade.
    TimeSource,
    /// Iteration of a std hash container (randomized order).
    HashIter,
    /// `thread::current`/`available_parallelism` outside the executor.
    ThreadId,
    /// Float reduction (`.sum()`/`.product()`) over unordered iteration.
    UnorderedReduce,
}

/// Every taint kind, in summary-array order.
pub const TAINTS: [Taint; 5] = [
    Taint::EnvRead,
    Taint::TimeSource,
    Taint::HashIter,
    Taint::ThreadId,
    Taint::UnorderedReduce,
];

impl Taint {
    /// Stable finding-kind slug.
    pub fn slug(self) -> &'static str {
        match self {
            Taint::EnvRead => "env-read",
            Taint::TimeSource => "time-source",
            Taint::HashIter => "hash-iteration",
            Taint::ThreadId => "thread-id",
            Taint::UnorderedReduce => "unordered-reduce",
        }
    }

    fn index(self) -> usize {
        match self {
            Taint::EnvRead => 0,
            Taint::TimeSource => 1,
            Taint::HashIter => 2,
            Taint::ThreadId => 3,
            Taint::UnorderedReduce => 4,
        }
    }
}

/// A direct taint site inside one function.
#[derive(Debug, Clone)]
pub struct TaintSite {
    /// 1-based line of the evidence token.
    pub line: usize,
    /// What was touched (`std::env::var`, `Instant`, …).
    pub what: String,
}

/// A direct allocation site inside one function (A003's vocabulary).
#[derive(Debug, Clone)]
pub struct AllocSite {
    /// 1-based line of the allocating construct.
    pub line: usize,
    /// Finding kind (`to_vec`, `vec!`, `Vec::new`, `Vec::turbofish`).
    pub kind: String,
    /// `Some(type)` for the turbofish-constructor form
    /// (`Vec::<T>::new()`), which renders a different message.
    pub ctor: Option<String>,
}

/// Per-function effect summaries at their least fixpoint.
pub struct Summaries {
    /// `taint_sites[f][Taint::index]`: the function's own direct site.
    taint_sites: Vec<[Option<TaintSite>; 5]>,
    /// Per-taint reverse reach: `dist[f]` is the minimum call distance
    /// from `f` to a direct site, `prev` walks toward one.
    taint_reach: Vec<Reach>,
    /// Every direct allocation site, per function.
    pub alloc_sites: Vec<Vec<AllocSite>>,
    /// Reverse reach onto allocating functions.
    alloc_reach: Reach,
}

impl Summaries {
    /// Extracts direct sites for every non-test function and propagates
    /// them to the fixpoint described in the module docs.
    pub fn compute(ws: &Workspace, graph: &CallGraph, config: &AnalysisConfig) -> Self {
        let mut taint_sites: Vec<[Option<TaintSite>; 5]> = Vec::with_capacity(ws.fns.len());
        let mut alloc_sites: Vec<Vec<AllocSite>> = Vec::with_capacity(ws.fns.len());
        for item in &ws.fns {
            if item.in_test {
                taint_sites.push(Default::default());
                alloc_sites.push(Vec::new());
                continue;
            }
            taint_sites.push(direct_taint_sites(ws, item, config));
            alloc_sites.push(direct_alloc_sites(ws, item));
        }
        let taint_reach = TAINTS
            .iter()
            .map(|taint| {
                let sources: Vec<usize> = (0..ws.fns.len())
                    .filter(|&f| taint_sites[f][taint.index()].is_some())
                    .collect();
                graph.reach_reverse(&sources)
            })
            .collect();
        let alloc_sources: Vec<usize> = (0..ws.fns.len())
            .filter(|&f| !alloc_sites[f].is_empty())
            .collect();
        let alloc_reach = graph.reach_reverse(&alloc_sources);
        Self {
            taint_sites,
            taint_reach,
            alloc_sites,
            alloc_reach,
        }
    }

    /// The function's own direct site for `taint`, if any.
    pub fn taint_site(&self, f: usize, taint: Taint) -> Option<&TaintSite> {
        self.taint_sites[f][taint.index()].as_ref()
    }

    /// Minimum call distance from `f` to a direct `taint` site
    /// (`usize::MAX` when unreachable, `0` when `f` has one itself).
    pub fn taint_dist(&self, f: usize, taint: Taint) -> usize {
        self.taint_reach[taint.index()].dist[f]
    }

    /// Witness call path `f -> … -> g` where `g` holds a direct site.
    /// Empty when `f` cannot reach the taint.
    pub fn taint_path(&self, f: usize, taint: Taint) -> Vec<usize> {
        self.taint_reach[taint.index()].path_from(f)
    }

    /// Minimum call distance from `f` to an allocating function.
    pub fn alloc_dist(&self, f: usize) -> usize {
        self.alloc_reach.dist[f]
    }
}

/// Identifiers that read the environment through `std::env`.
const ENV_READS: &[&str] = &["var", "var_os", "vars", "vars_os"];

/// Method names that iterate a container (shared with A004's semantics).
const ITERATION_METHODS: &[&str] = &["iter", "keys", "values", "into_iter", "drain", "iter_mut"];

/// Scans one function's owned tokens for direct taint sites, applying the
/// per-crate sanctions from `config` (the noise-suppression rules).
fn direct_taint_sites(
    ws: &Workspace,
    item: &FnItem,
    config: &AnalysisConfig,
) -> [Option<TaintSite>; 5] {
    let crate_name = &ws.files[item.file].crate_name;
    let env_ok = config.env_shims.iter().any(|c| c == crate_name);
    let time_ok = config.timing_facades.iter().any(|c| c == crate_name);
    let thread_ok = config.parallel_crates.iter().any(|c| c == crate_name);

    let mut sites: [Option<TaintSite>; 5] = Default::default();
    let tokens = &ws.files[item.file].tokens;

    // Hash-container evidence, shared by HashIter and UnorderedReduce:
    // the container must be named in this function (body or params).
    let mut hash_line = None;
    let mut iterates = false;
    let mut reduce_at = None;
    for (i, token) in ws.body_tokens(item) {
        if token.kind != TokenKind::Ident {
            continue;
        }
        let prev = i.checked_sub(1).map(|p| tokens[p].text.as_str());
        let prev2 = i.checked_sub(2).map(|p| tokens[p].text.as_str());
        match token.text.as_str() {
            "HashMap" | "HashSet" => {
                hash_line.get_or_insert(ws.line_of(item, i));
            }
            "for" => iterates = true,
            "Instant" | "SystemTime" if !time_ok && sites[Taint::TimeSource.index()].is_none() => {
                sites[Taint::TimeSource.index()] = Some(TaintSite {
                    line: ws.line_of(item, i),
                    what: token.text.clone(),
                });
            }
            name if ENV_READS.contains(&name)
                && !env_ok
                && prev == Some("::")
                && prev2 == Some("env")
                && sites[Taint::EnvRead.index()].is_none() =>
            {
                sites[Taint::EnvRead.index()] = Some(TaintSite {
                    line: ws.line_of(item, i),
                    what: format!("std::env::{name}"),
                });
            }
            name @ ("current" | "available_parallelism")
                if !thread_ok
                    && prev == Some("::")
                    && prev2 == Some("thread")
                    && sites[Taint::ThreadId.index()].is_none() =>
            {
                sites[Taint::ThreadId.index()] = Some(TaintSite {
                    line: ws.line_of(item, i),
                    what: format!("thread::{name}"),
                });
            }
            name @ ("sum" | "product") if prev == Some(".") => {
                reduce_at.get_or_insert((ws.line_of(item, i), name.to_owned()));
            }
            _ => {}
        }
    }
    let names_hash = hash_line.is_some()
        || item
            .params
            .iter()
            .any(|p| p.type_text.contains("HashMap") || p.type_text.contains("HashSet"));
    iterates = iterates
        || item
            .calls
            .iter()
            .any(|c| c.kind == CallKind::Method && ITERATION_METHODS.contains(&c.name.as_str()));
    if names_hash && iterates {
        sites[Taint::HashIter.index()] = Some(TaintSite {
            line: hash_line.unwrap_or(item.line),
            what: "std hash container iteration".to_owned(),
        });
    }
    if names_hash {
        if let Some((line, method)) = reduce_at {
            sites[Taint::UnorderedReduce.index()] = Some(TaintSite {
                line,
                what: format!("`.{method}()` over a std hash container"),
            });
        }
    }
    sites
}

/// Method names that allocate.
const ALLOC_METHODS: &[&str] = &["to_vec", "to_owned", "to_string", "collect", "clone"];

/// Macro names that allocate.
const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// `Type::fn` pairs that allocate.
const ALLOC_QUALIFIED: &[(&str, &str)] = &[
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("Box", "new"),
    ("String", "new"),
    ("String", "with_capacity"),
];

/// Scans one function for direct allocation sites — A003's exact
/// vocabulary, so baseline keys and counts survive the migration from the
/// old per-pass scan. Call-form sites come first, then the turbofish
/// token-scan sites, matching the old emission order.
fn direct_alloc_sites(ws: &Workspace, item: &FnItem) -> Vec<AllocSite> {
    let mut sites = Vec::new();
    for call in &item.calls {
        let kind = match call.kind {
            CallKind::Method if ALLOC_METHODS.contains(&call.name.as_str()) => {
                Some(call.name.clone())
            }
            CallKind::Macro if ALLOC_MACROS.contains(&call.name.as_str()) => {
                Some(format!("{}!", call.name))
            }
            CallKind::Qualified => call.qualifier.as_ref().and_then(|q| {
                ALLOC_QUALIFIED
                    .iter()
                    .find(|(ty, f)| q == ty && call.name == *f)
                    .map(|(ty, f)| format!("{ty}::{f}"))
            }),
            _ => None,
        };
        if let Some(kind) = kind {
            sites.push(AllocSite {
                line: call.line,
                kind,
                ctor: None,
            });
        }
    }
    // Turbofish forms the call extractor misses: `.collect::<Vec<_>>()`
    // (`::` follows the name, not `(`), and `Vec::<T>::new()` (the
    // qualifier segment is `<T>`, not the type).
    let tokens = &ws.files[item.file].tokens;
    for (i, token) in ws.body_tokens(item) {
        if token.kind != TokenKind::Ident {
            continue;
        }
        if ALLOC_METHODS.contains(&token.text.as_str())
            && i > 0
            && tokens[i - 1].text == "."
            && tokens.get(i + 1).is_some_and(|t| t.text == "::")
        {
            sites.push(AllocSite {
                line: ws.line_of(item, i),
                kind: token.text.clone(),
                ctor: None,
            });
            continue;
        }
        if (token.text == "Vec" || token.text == "Box" || token.text == "String")
            && tokens.get(i + 1).is_some_and(|t| t.text == "::")
            && tokens.get(i + 2).is_some_and(|t| t.text == "<")
        {
            sites.push(AllocSite {
                line: ws.line_of(item, i),
                kind: format!("{}::turbofish", token.text),
                ctor: Some(token.text.clone()),
            });
        }
    }
    sites
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;
    use crate::model::Workspace;
    use crate::passes::AnalysisConfig;

    fn summaries(files: &[(&str, &str)]) -> (Workspace, Summaries) {
        let ws = Workspace::from_sources(files.iter().copied());
        let graph = CallGraph::build(&ws);
        let s = Summaries::compute(&ws, &graph, &AnalysisConfig::default());
        (ws, s)
    }

    fn find(ws: &Workspace, name: &str) -> usize {
        ws.fns
            .iter()
            .position(|f| f.qual_name() == name)
            .unwrap_or_else(|| panic!("no fn {name}"))
    }

    #[test]
    fn env_read_propagates_two_calls_deep_with_path() {
        let (ws, s) = summaries(&[(
            "crates/bench/src/lib.rs",
            "pub fn top() { mid(); }\n\
             fn mid() { leaf(); }\n\
             fn leaf() { let _ = std::env::var(\"X\"); }\n",
        )]);
        let top = find(&ws, "top");
        let leaf = find(&ws, "leaf");
        assert_eq!(s.taint_dist(top, Taint::EnvRead), 2);
        assert_eq!(s.taint_dist(leaf, Taint::EnvRead), 0);
        let path = s.taint_path(top, Taint::EnvRead);
        assert_eq!(path.len(), 3);
        assert_eq!(path[0], top);
        assert_eq!(path[2], leaf);
        assert_eq!(
            s.taint_site(leaf, Taint::EnvRead).unwrap().what,
            "std::env::var"
        );
    }

    #[test]
    fn sanctioned_crates_record_no_sites() {
        let (ws, s) = summaries(&[
            (
                "crates/config/src/lib.rs",
                "pub fn raw(name: &str) -> Option<String> { std::env::var(name).ok() }\n",
            ),
            (
                "crates/obs/src/wall.rs",
                "use std::time::Instant;\npub fn stamp() { let _t = Instant::now(); }\n",
            ),
            (
                "crates/parallel/src/lib.rs",
                "pub fn auto_threads() -> usize { std::thread::available_parallelism().map_or(1, usize::from) }\n",
            ),
            (
                "crates/selector/src/lib.rs",
                "pub fn uses_all() { anubis_config::raw(\"X\"); anubis_parallel::auto_threads(); }\n",
            ),
        ]);
        let caller = find(&ws, "uses_all");
        for taint in TAINTS {
            assert_eq!(
                s.taint_dist(caller, taint),
                usize::MAX,
                "taint {taint:?} leaked through a sanctioned crate"
            );
        }
    }

    #[test]
    fn unsanctioned_time_source_and_thread_id_are_sites() {
        let (ws, s) = summaries(&[(
            "crates/metrics/src/lib.rs",
            "pub fn stamp() { let _t = std::time::Instant::now(); }\n\
             pub fn me() { let _id = std::thread::current(); }\n",
        )]);
        assert_eq!(s.taint_dist(find(&ws, "stamp"), Taint::TimeSource), 0);
        assert_eq!(s.taint_dist(find(&ws, "me"), Taint::ThreadId), 0);
    }

    #[test]
    fn hash_iteration_and_unordered_reduce_detected() {
        let (ws, s) = summaries(&[(
            "crates/cluster/src/lib.rs",
            "use std::collections::HashMap;\n\
             pub fn total(m: &HashMap<u32, f64>) -> f64 { m.values().sum::<f64>() }\n",
        )]);
        let total = find(&ws, "total");
        assert_eq!(s.taint_dist(total, Taint::HashIter), 0);
        assert_eq!(s.taint_dist(total, Taint::UnorderedReduce), 0);
    }

    #[test]
    fn ordered_reduction_is_not_flagged() {
        let (ws, s) = summaries(&[(
            "crates/cluster/src/lib.rs",
            "pub fn total(v: &[f64]) -> f64 { v.iter().sum::<f64>() }\n",
        )]);
        assert_eq!(
            s.taint_dist(find(&ws, "total"), Taint::UnorderedReduce),
            usize::MAX
        );
    }

    #[test]
    fn alloc_distance_reaches_through_wrappers() {
        let (ws, s) = summaries(&[(
            "crates/nn/src/mlp.rs",
            "pub fn entry() { wrapper(); }\n\
             fn wrapper() { worker(); }\n\
             fn worker(x: &[f64]) { let _y = x.to_vec(); }\n\
             pub fn clean(x: f64) -> f64 { x * 2.0 }\n",
        )]);
        assert_eq!(s.alloc_dist(find(&ws, "entry")), 2);
        assert_eq!(s.alloc_dist(find(&ws, "clean")), usize::MAX);
        assert_eq!(s.alloc_sites[find(&ws, "worker")].len(), 1);
        assert_eq!(s.alloc_sites[find(&ws, "worker")][0].kind, "to_vec");
    }

    #[test]
    fn recursion_terminates_with_finite_distances() {
        let (ws, s) = summaries(&[(
            "crates/metrics/src/lib.rs",
            "pub fn ping(n: usize) { pong(n); let _ = std::env::var(\"X\"); }\n\
             pub fn pong(n: usize) { ping(n); }\n",
        )]);
        assert_eq!(s.taint_dist(find(&ws, "ping"), Taint::EnvRead), 0);
        assert_eq!(s.taint_dist(find(&ws, "pong"), Taint::EnvRead), 1);
        let path = s.taint_path(find(&ws, "pong"), Taint::EnvRead);
        assert_eq!(path.len(), 2, "witness path must not cycle: {path:?}");
    }
}

//! Interprocedural dataflow over the call graph: per-function summaries
//! propagated to a fixpoint.
//!
//! The per-function passes (A003's direct allocation scan, A004's direct
//! determinism scan) answer "does this function *itself* do X"; the
//! summaries here answer "can this function *transitively* do X". Each
//! function gets a summary per effect kind — the five nondeterminism
//! [`Taint`]s plus allocation — holding:
//!
//! - the **direct site**, when the function's own tokens touch the effect
//!   (at most one per taint kind, every site for allocations), and
//! - the **minimum call distance** to any function with a direct site:
//!   `0` when the function has one itself, `1 + min over callees`
//!   otherwise, `usize::MAX` when no call path reaches the effect.
//!
//! The distance lattice makes the fixpoint trivial: the equations are
//! exactly single-source shortest paths over the *reversed* call graph
//! (every direct-site function is a source), so one BFS per effect kind
//! computes the unique least fixpoint — recursion and call cycles need no
//! special casing, and the per-kind cost is `O(nodes + edges)`. Witness
//! paths follow the BFS predecessor links, along which the distance
//! strictly decreases, so a reported call path always terminates at a
//! function with a direct site and is deterministic across runs (BFS
//! visits sorted adjacency).
//!
//! **Noise suppression** happens at *extraction*, not propagation: a crate
//! sanctioned for an effect (the `anubis-config` env shim, the
//! `anubis-obs` wall-clock facade, `anubis-parallel`'s thread-count probe)
//! simply records no direct site, so nothing propagates to its callers.
//! This is what lets every caller of `anubis_parallel::map_chunks` stay
//! clean: the executor reads `ANUBIS_THREADS` through the shim, and the
//! determinism contract makes the thread count unobservable in results.
//!
//! Consumers: A003 (allocation summaries replace its per-pass token
//! scan), A006 (taint distances from deterministic roots), A007 (taint
//! distances of functions called from `anubis-parallel` closures).

use crate::callgraph::{CallGraph, Reach};
use crate::model::{CallKind, FnItem, Token, TokenKind, Workspace};
use crate::passes::AnalysisConfig;
use std::ops::Range;

/// The nondeterminism effects tracked interprocedurally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Taint {
    /// `std::env::var`/`vars` outside the sanctioned config shim.
    EnvRead,
    /// `Instant`/`SystemTime` outside the observability facade.
    TimeSource,
    /// Iteration of a std hash container (randomized order).
    HashIter,
    /// `thread::current`/`available_parallelism` outside the executor.
    ThreadId,
    /// Float reduction (`.sum()`/`.product()`) over unordered iteration.
    UnorderedReduce,
}

/// Every taint kind, in summary-array order.
pub const TAINTS: [Taint; 5] = [
    Taint::EnvRead,
    Taint::TimeSource,
    Taint::HashIter,
    Taint::ThreadId,
    Taint::UnorderedReduce,
];

impl Taint {
    /// Stable finding-kind slug.
    pub fn slug(self) -> &'static str {
        match self {
            Taint::EnvRead => "env-read",
            Taint::TimeSource => "time-source",
            Taint::HashIter => "hash-iteration",
            Taint::ThreadId => "thread-id",
            Taint::UnorderedReduce => "unordered-reduce",
        }
    }

    fn index(self) -> usize {
        match self {
            Taint::EnvRead => 0,
            Taint::TimeSource => 1,
            Taint::HashIter => 2,
            Taint::ThreadId => 3,
            Taint::UnorderedReduce => 4,
        }
    }
}

/// A direct taint site inside one function.
#[derive(Debug, Clone)]
pub struct TaintSite {
    /// 1-based line of the evidence token.
    pub line: usize,
    /// What was touched (`std::env::var`, `Instant`, …).
    pub what: String,
}

/// A direct allocation site inside one function (A003's vocabulary),
/// carrying provenance: the token position, the enclosing-statement span,
/// and the site's escape class.
#[derive(Debug, Clone)]
pub struct AllocSite {
    /// 1-based line of the allocating construct.
    pub line: usize,
    /// Finding kind (`to_vec`, `vec!`, `Vec::new`, `Vec::turbofish`).
    pub kind: String,
    /// `Some(type)` for the turbofish-constructor form
    /// (`Vec::<T>::new()`), which renders a different message.
    pub ctor: Option<String>,
    /// Token index of the allocating identifier in the file's stream.
    pub at: usize,
    /// Approximate span: first and last 1-based line of the enclosing
    /// statement.
    pub span: (usize, usize),
    /// Where the allocated value ends up.
    pub escape: Escape,
}

/// The escape lattice for an allocation site — where the allocated value
/// can end up, decided by a conservative token-level analysis.
///
/// Only [`Escape::Local`] is a *proof*: every use of the value is a
/// borrow, a non-consuming method call, an index, or a reassignment, so
/// the value dies inside the function and the site is a per-call
/// temporary (arena-able). Every context the classifier cannot positively
/// discharge falls into one of the escaping classes — the analysis
/// under-approximates non-escaping, never the reverse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Escape {
    /// Scope-local temporary: provably dies before the function returns.
    Local,
    /// The value is returned (or is a block tail expression, which the
    /// classifier cannot distinguish from one and treats the same).
    Returned,
    /// Moved into a place (field, static, container) or into a call.
    Stored,
    /// Captured by a closure declared after the binding — the closure may
    /// outlive the statement, so the value escapes with it.
    Captured,
    /// Context the classifier does not model; conservatively escaping.
    Unknown,
}

impl Escape {
    /// Whether the value may outlive the enclosing call.
    pub fn escapes(self) -> bool {
        !matches!(self, Escape::Local)
    }

    /// Stable slug for messages and reports.
    pub fn slug(self) -> &'static str {
        match self {
            Escape::Local => "local",
            Escape::Returned => "returned",
            Escape::Stored => "stored",
            Escape::Captured => "captured",
            Escape::Unknown => "unknown",
        }
    }
}

/// Per-function effect summaries at their least fixpoint.
pub struct Summaries {
    /// `taint_sites[f][Taint::index]`: the function's own direct site.
    taint_sites: Vec<[Option<TaintSite>; 5]>,
    /// Per-taint reverse reach: `dist[f]` is the minimum call distance
    /// from `f` to a direct site, `prev` walks toward one.
    taint_reach: Vec<Reach>,
    /// Every direct allocation site, per function.
    pub alloc_sites: Vec<Vec<AllocSite>>,
    /// Reverse reach onto allocating functions.
    alloc_reach: Reach,
}

impl Summaries {
    /// Extracts direct sites for every non-test function and propagates
    /// them to the fixpoint described in the module docs.
    pub fn compute(ws: &Workspace, graph: &CallGraph, config: &AnalysisConfig) -> Self {
        let mut taint_sites: Vec<[Option<TaintSite>; 5]> = Vec::with_capacity(ws.fns.len());
        let mut alloc_sites: Vec<Vec<AllocSite>> = Vec::with_capacity(ws.fns.len());
        for item in &ws.fns {
            if item.in_test {
                taint_sites.push(Default::default());
                alloc_sites.push(Vec::new());
                continue;
            }
            taint_sites.push(direct_taint_sites(ws, item, config));
            alloc_sites.push(direct_alloc_sites(ws, item, config));
        }
        let taint_reach = TAINTS
            .iter()
            .map(|taint| {
                let sources: Vec<usize> = (0..ws.fns.len())
                    .filter(|&f| taint_sites[f][taint.index()].is_some())
                    .collect();
                graph.reach_reverse(&sources)
            })
            .collect();
        let alloc_sources: Vec<usize> = (0..ws.fns.len())
            .filter(|&f| !alloc_sites[f].is_empty())
            .collect();
        let alloc_reach = graph.reach_reverse(&alloc_sources);
        Self {
            taint_sites,
            taint_reach,
            alloc_sites,
            alloc_reach,
        }
    }

    /// The function's own direct site for `taint`, if any.
    pub fn taint_site(&self, f: usize, taint: Taint) -> Option<&TaintSite> {
        self.taint_sites[f][taint.index()].as_ref()
    }

    /// Minimum call distance from `f` to a direct `taint` site
    /// (`usize::MAX` when unreachable, `0` when `f` has one itself).
    pub fn taint_dist(&self, f: usize, taint: Taint) -> usize {
        self.taint_reach[taint.index()].dist[f]
    }

    /// Witness call path `f -> … -> g` where `g` holds a direct site.
    /// Empty when `f` cannot reach the taint.
    pub fn taint_path(&self, f: usize, taint: Taint) -> Vec<usize> {
        self.taint_reach[taint.index()].path_from(f)
    }

    /// Minimum call distance from `f` to an allocating function.
    pub fn alloc_dist(&self, f: usize) -> usize {
        self.alloc_reach.dist[f]
    }
}

/// Identifiers that read the environment through `std::env`.
const ENV_READS: &[&str] = &["var", "var_os", "vars", "vars_os"];

/// Method names that iterate a container (shared with A004's semantics).
const ITERATION_METHODS: &[&str] = &["iter", "keys", "values", "into_iter", "drain", "iter_mut"];

/// Scans one function's owned tokens for direct taint sites, applying the
/// per-crate sanctions from `config` (the noise-suppression rules).
fn direct_taint_sites(
    ws: &Workspace,
    item: &FnItem,
    config: &AnalysisConfig,
) -> [Option<TaintSite>; 5] {
    let crate_name = &ws.files[item.file].crate_name;
    let env_ok = config.env_shims.iter().any(|c| c == crate_name);
    let time_ok = config.timing_facades.iter().any(|c| c == crate_name);
    let thread_ok = config.parallel_crates.iter().any(|c| c == crate_name);

    let mut sites: [Option<TaintSite>; 5] = Default::default();
    let tokens = &ws.files[item.file].tokens;

    // Hash-container evidence, shared by HashIter and UnorderedReduce:
    // the container must be named in this function (body or params).
    let mut hash_line = None;
    let mut iterates = false;
    let mut reduce_at = None;
    for (i, token) in ws.body_tokens(item) {
        if token.kind != TokenKind::Ident {
            continue;
        }
        let prev = i.checked_sub(1).map(|p| tokens[p].text.as_str());
        let prev2 = i.checked_sub(2).map(|p| tokens[p].text.as_str());
        match token.text.as_str() {
            "HashMap" | "HashSet" => {
                hash_line.get_or_insert(ws.line_of(item, i));
            }
            "for" => iterates = true,
            "Instant" | "SystemTime" if !time_ok && sites[Taint::TimeSource.index()].is_none() => {
                sites[Taint::TimeSource.index()] = Some(TaintSite {
                    line: ws.line_of(item, i),
                    what: token.text.clone(),
                });
            }
            name if ENV_READS.contains(&name)
                && !env_ok
                && prev == Some("::")
                && prev2 == Some("env")
                && sites[Taint::EnvRead.index()].is_none() =>
            {
                sites[Taint::EnvRead.index()] = Some(TaintSite {
                    line: ws.line_of(item, i),
                    what: format!("std::env::{name}"),
                });
            }
            name @ ("current" | "available_parallelism")
                if !thread_ok
                    && prev == Some("::")
                    && prev2 == Some("thread")
                    && sites[Taint::ThreadId.index()].is_none() =>
            {
                sites[Taint::ThreadId.index()] = Some(TaintSite {
                    line: ws.line_of(item, i),
                    what: format!("thread::{name}"),
                });
            }
            name @ ("sum" | "product") if prev == Some(".") => {
                reduce_at.get_or_insert((ws.line_of(item, i), name.to_owned()));
            }
            _ => {}
        }
    }
    let names_hash = hash_line.is_some()
        || item
            .params
            .iter()
            .any(|p| p.type_text.contains("HashMap") || p.type_text.contains("HashSet"));
    iterates = iterates
        || item
            .calls
            .iter()
            .any(|c| c.kind == CallKind::Method && ITERATION_METHODS.contains(&c.name.as_str()));
    if names_hash && iterates {
        sites[Taint::HashIter.index()] = Some(TaintSite {
            line: hash_line.unwrap_or(item.line),
            what: "std hash container iteration".to_owned(),
        });
    }
    if names_hash {
        if let Some((line, method)) = reduce_at {
            sites[Taint::UnorderedReduce.index()] = Some(TaintSite {
                line,
                what: format!("`.{method}()` over a std hash container"),
            });
        }
    }
    sites
}

/// Method names that allocate.
const ALLOC_METHODS: &[&str] = &["to_vec", "to_owned", "to_string", "collect", "clone"];

/// Macro names that allocate.
const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// `Type::fn` pairs that allocate.
const ALLOC_QUALIFIED: &[(&str, &str)] = &[
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("Box", "new"),
    ("String", "new"),
    ("String", "with_capacity"),
];

/// Scans one function for direct allocation sites — A003's exact
/// vocabulary, so baseline keys and counts survive the migration from the
/// old per-pass scan. Call-form sites come first, then the turbofish
/// token-scan sites, matching the old emission order. Each site carries
/// its token index and escape class; crates sanctioned as arena
/// implementations ([`AnalysisConfig::arena_crates`]) record no sites,
/// exactly like the env shim for taint — pooled allocation inside the
/// arena is the sanctioned mechanism, not a hot-path cost.
fn direct_alloc_sites(ws: &Workspace, item: &FnItem, config: &AnalysisConfig) -> Vec<AllocSite> {
    let crate_name = &ws.files[item.file].crate_name;
    if config.arena_crates.iter().any(|c| c == crate_name) {
        return Vec::new();
    }
    let mut sites = Vec::new();
    for call in &item.calls {
        let kind = match call.kind {
            CallKind::Method if ALLOC_METHODS.contains(&call.name.as_str()) => {
                Some(call.name.clone())
            }
            CallKind::Macro if ALLOC_MACROS.contains(&call.name.as_str()) => {
                Some(format!("{}!", call.name))
            }
            CallKind::Qualified => call.qualifier.as_ref().and_then(|q| {
                ALLOC_QUALIFIED
                    .iter()
                    .find(|(ty, f)| q == ty && call.name == *f)
                    .map(|(ty, f)| format!("{ty}::{f}"))
            }),
            _ => None,
        };
        if let Some(kind) = kind {
            sites.push(AllocSite {
                line: call.line,
                kind,
                ctor: None,
                at: call.at,
                span: (0, 0),
                escape: Escape::Unknown,
            });
        }
    }
    // Turbofish forms the call extractor misses: `.collect::<Vec<_>>()`
    // (`::` follows the name, not `(`), and `Vec::<T>::new()` (the
    // qualifier segment is `<T>`, not the type).
    let tokens = &ws.files[item.file].tokens;
    for (i, token) in ws.body_tokens(item) {
        if token.kind != TokenKind::Ident {
            continue;
        }
        if ALLOC_METHODS.contains(&token.text.as_str())
            && i > 0
            && tokens[i - 1].text == "."
            && tokens.get(i + 1).is_some_and(|t| t.text == "::")
        {
            sites.push(AllocSite {
                line: ws.line_of(item, i),
                kind: token.text.clone(),
                ctor: None,
                at: i,
                span: (0, 0),
                escape: Escape::Unknown,
            });
            continue;
        }
        if (token.text == "Vec" || token.text == "Box" || token.text == "String")
            && tokens.get(i + 1).is_some_and(|t| t.text == "::")
            && tokens.get(i + 2).is_some_and(|t| t.text == "<")
        {
            sites.push(AllocSite {
                line: ws.line_of(item, i),
                kind: format!("{}::turbofish", token.text),
                ctor: Some(token.text.clone()),
                at: i,
                span: (0, 0),
                escape: Escape::Unknown,
            });
        }
    }
    // Escape-classify every site against the full body (closure tokens
    // included — they stay with the parent in the token model).
    if !item.body.is_empty() {
        for site in &mut sites {
            let (escape, stmt) = classify_escape(tokens, &item.body, site.at);
            site.escape = escape;
            let first = stmt.start.min(tokens.len().saturating_sub(1));
            let last = stmt.end.saturating_sub(1).min(tokens.len() - 1).max(first);
            site.span = (
                ws.files[item.file].masked.line_of(tokens[first].offset),
                ws.files[item.file].masked.line_of(tokens[last].offset),
            );
        }
    }
    sites
}

/// Finds the enclosing statement of the token at `at` within a function
/// body. Returns `(start, end, tail)`: the token range `[start, end)` of
/// the statement (terminator excluded) and whether the statement is a
/// block *tail expression* (terminated by a closing brace rather than
/// `;`, so its value flows out of the block).
///
/// Both walks are bracket-matched. Backward, a boundary is any of: `;` /
/// `,` at depth zero (previous statement or match-arm separator), an
/// unmatched opener (the enclosing block or argument list starts there),
/// or a `}` at depth zero (a preceding brace-statement such as a bare
/// `if`/`for`). A complete brace block *inside* the same statement sits
/// behind parens or after `=` in practice, so the rule mis-splits only
/// exotic forms — which then fail the `let`/`return` checks and classify
/// conservatively.
fn enclosing_statement(tokens: &[Token], body: &Range<usize>, at: usize) -> (usize, usize, bool) {
    let mut start = body.start + 1;
    let mut depth = 0i32;
    let mut i = at;
    while i > body.start {
        i -= 1;
        match tokens[i].text.as_str() {
            ")" | "]" => depth += 1,
            "}" => {
                if depth == 0 {
                    start = i + 1;
                    break;
                }
                depth += 1;
            }
            "(" | "[" | "{" => {
                if depth == 0 {
                    start = i + 1;
                    break;
                }
                depth -= 1;
            }
            ";" | "," if depth == 0 => {
                start = i + 1;
                break;
            }
            _ => {}
        }
    }
    let mut depth = 0i32;
    let mut j = at;
    let limit = body.end.min(tokens.len());
    let (end, tail) = loop {
        if j >= limit {
            break (limit, true);
        }
        match tokens[j].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                // Only a closing *brace* ends a block tail; `)`/`]` close
                // an enclosing argument list, which the chain-walk handles.
                if depth == 0 {
                    break (j, tokens[j].text == "}");
                }
                depth -= 1;
            }
            ";" | "," if depth == 0 => break (j, false),
            _ => {}
        }
        j += 1;
    };
    (start, end, tail)
}

/// Matches the closing delimiter for the opener at `open`.
fn matching_close(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Token ranges of every closure body inside `range` (conservative: the
/// params-and-body span from the opening `|` to the end of the body).
/// Used to detect closure capture of a tracked binding.
fn closure_ranges(tokens: &[Token], range: &Range<usize>) -> Vec<Range<usize>> {
    let mut ranges = Vec::new();
    let mut i = range.start;
    while i < range.end.min(tokens.len()) {
        let t = &tokens[i];
        let starts_closure = if t.text == "||" {
            true
        } else if t.text == "|" {
            // A closure `|` follows a call opener, separator, binding `=`,
            // `move`, or statement position; a binary-or follows a value.
            i.checked_sub(1).map(|p| &tokens[p]).map_or(true, |p| {
                matches!(
                    p.text.as_str(),
                    "(" | "," | "=" | "=>" | "{" | ";" | ":" | "["
                ) || matches!(p.text.as_str(), "move" | "return")
            })
        } else {
            false
        };
        if !starts_closure {
            i += 1;
            continue;
        }
        // Skip params: `||` has none; `|a, b|` ends at the next `|`.
        let mut body_start = i + 1;
        if t.text == "|" {
            match tokens[i + 1..range.end.min(tokens.len())]
                .iter()
                .position(|t| t.text == "|")
            {
                Some(off) => body_start = i + 1 + off + 1,
                None => break,
            }
        }
        // Body: a brace block, or an expression up to a top-level `,`/`)`.
        let body_end = if tokens.get(body_start).is_some_and(|t| t.text == "{") {
            matching_close(tokens, body_start).map_or(range.end, |c| c + 1)
        } else {
            let mut depth = 0i32;
            let mut j = body_start;
            loop {
                if j >= range.end.min(tokens.len()) {
                    break j;
                }
                match tokens[j].text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" if depth == 0 => break j,
                    ")" | "]" | "}" => depth -= 1,
                    "," | ";" if depth == 0 => break j,
                    _ => {}
                }
                j += 1;
            }
        };
        ranges.push(i..body_end);
        i = body_start;
    }
    ranges
}

/// Assignment operators (a use as their left operand overwrites the
/// binding — a local use, not an escape).
const ASSIGN_OPS: &[&str] = &[
    "=", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<=", ">>=",
];

/// Callees that move a value *out* through a `&mut` borrow, so even a
/// borrow-looking use escapes.
const STEALING_CALLS: &[&str] = &["take", "replace", "swap"];

/// Whether the use at `u` sits in the argument list of a value-stealing
/// call (`mem::take(&mut x)` and friends): walk back to the innermost
/// unmatched `(` and inspect the callee name.
fn in_stealing_call(tokens: &[Token], stmt_start: usize, u: usize) -> bool {
    let mut depth = 0i32;
    let mut i = u;
    while i > stmt_start {
        i -= 1;
        match tokens[i].text.as_str() {
            ")" | "]" => depth += 1,
            "(" if depth == 0 => {
                return i
                    .checked_sub(1)
                    .map(|p| &tokens[p])
                    .is_some_and(|p| STEALING_CALLS.contains(&p.text.as_str()));
            }
            "(" | "[" => depth -= 1,
            _ => {}
        }
    }
    false
}

/// Classifies one use of a tracked binding. `None` means the use is
/// local (borrow / non-consuming method / index / reassignment);
/// `Some(escape)` stops the scan.
fn classify_use(tokens: &[Token], stmt_start: usize, u: usize) -> Option<Escape> {
    let prev = u.checked_sub(1).map(|p| tokens[p].text.as_str());
    let prev2 = u.checked_sub(2).map(|p| tokens[p].text.as_str());
    let next = tokens.get(u + 1).map(|t| t.text.as_str());
    if prev == Some("&") || (prev == Some("mut") && prev2 == Some("&")) {
        if in_stealing_call(tokens, stmt_start, u) {
            return Some(Escape::Unknown);
        }
        return None;
    }
    if prev == Some("return") {
        return Some(Escape::Returned);
    }
    match next {
        // `name.method(..)`: auto-ref borrow unless the method consumes
        // the receiver (`into_iter` and friends).
        Some(".") => {
            let m = tokens.get(u + 2);
            let called = tokens.get(u + 3).is_some_and(|t| t.text == "(");
            match m {
                Some(m) if m.kind == TokenKind::Ident && called && !m.text.starts_with("into") => {
                    None
                }
                _ => Some(Escape::Unknown),
            }
        }
        // Indexing borrows; assignment overwrites.
        Some("[") => None,
        Some(op) if ASSIGN_OPS.contains(&op) => None,
        // Bare name before a closing brace: a block tail expression.
        Some("}") => Some(Escape::Returned),
        _ => match prev {
            // Bare name moved into a call or onto the right of an
            // assignment: the callee / place now owns it.
            Some("(" | "," | "=" | "{") => Some(Escape::Stored),
            _ => Some(Escape::Unknown),
        },
    }
}

/// Chain-walks the value of a call-form allocation in a non-`let`
/// statement: follow method chains off the result, then decide by what
/// finally consumes it.
fn classify_expression_value(
    tokens: &[Token],
    stmt: Range<usize>,
    at: usize,
    expr_start: usize,
) -> Escape {
    // An assignment earlier in the statement means the chain value lands
    // in a place: `self.buf = x.to_vec();` stores.
    let mut depth = 0i32;
    for token in &tokens[stmt.start..at] {
        match token.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            "=" if depth == 0 => return Escape::Stored,
            _ => {}
        }
    }
    // First delimiter after the site opens the call's argument list
    // (turbofish generics sit between); follow the chain from its close.
    let open = (at + 1..stmt.end).find(|&i| tokens[i].text == "(" || tokens[i].text == "[");
    let Some(open) = open else {
        return Escape::Unknown;
    };
    let Some(mut close) = matching_close(tokens, open) else {
        return Escape::Unknown;
    };
    loop {
        match tokens.get(close + 1).map(|t| t.text.as_str()) {
            // Dropped at the end of the statement: a pure temporary.
            Some(";") => return Escape::Local,
            Some("?") => close += 1,
            Some(".") => {
                // Chained method: hop to its closing paren.
                let m = close + 2;
                if tokens.get(m).is_some_and(|t| t.kind == TokenKind::Ident) {
                    let next_open = (m + 1..stmt.end + 1)
                        .find(|&i| tokens.get(i).is_some_and(|t| t.text == "("));
                    match next_open.and_then(|o| matching_close(tokens, o)) {
                        Some(c) => close = c,
                        None => return Escape::Unknown,
                    }
                } else {
                    return Escape::Unknown;
                }
            }
            // Argument of an enclosing call: borrowed temporaries die at
            // statement end; moved ones belong to the callee.
            Some(")" | "," | "]") => {
                let borrowed = expr_start
                    .checked_sub(1)
                    .map(|p| &tokens[p])
                    .is_some_and(|p| p.text == "&");
                return if borrowed {
                    Escape::Local
                } else {
                    Escape::Stored
                };
            }
            Some("}") | None => return Escape::Returned,
            _ => return Escape::Unknown,
        }
    }
}

/// Start of the expression the allocation at `at` belongs to: for method
/// forms, walk left across the receiver chain (`a.b[i].to_vec()` starts
/// at `a`); for constructor/macro forms the site itself starts it (minus
/// the `Type ::` qualifier).
fn expression_start(tokens: &[Token], stmt_start: usize, at: usize) -> usize {
    let mut start = at;
    loop {
        let Some(prev) = start.checked_sub(1).filter(|&p| p >= stmt_start) else {
            return start;
        };
        match tokens[prev].text.as_str() {
            "." | "::" => {
                let Some(before) = prev.checked_sub(1).filter(|&p| p >= stmt_start) else {
                    return start;
                };
                match tokens[before].text.as_str() {
                    ")" | "]" => {
                        // Jump back over the matched group.
                        let mut depth = 0i32;
                        let mut i = before;
                        loop {
                            match tokens[i].text.as_str() {
                                ")" | "]" => depth += 1,
                                "(" | "[" => {
                                    depth -= 1;
                                    if depth == 0 {
                                        break;
                                    }
                                }
                                _ => {}
                            }
                            if i == stmt_start {
                                break;
                            }
                            i -= 1;
                        }
                        start = i;
                    }
                    _ if tokens[before].kind == TokenKind::Ident
                        || tokens[before].kind == TokenKind::Number =>
                    {
                        start = before;
                    }
                    _ => return start,
                }
            }
            _ => return start,
        }
    }
}

/// The conservative escape classifier (see [`Escape`]). `body` is the
/// function's full body token range; `at` the allocating identifier.
pub(crate) fn classify_escape(
    tokens: &[Token],
    body: &Range<usize>,
    at: usize,
) -> (Escape, Range<usize>) {
    let (start, end, tail) = enclosing_statement(tokens, body, at);
    let stmt = start..end;
    if tokens.get(start).is_some_and(|t| t.text == "return") {
        return (Escape::Returned, stmt);
    }
    if tail {
        return (Escape::Returned, stmt);
    }
    if tokens.get(start).is_some_and(|t| t.text == "let") {
        // Simple binding only: `let [mut] name (: Ty)? = init;`.
        let mut j = start + 1;
        if tokens.get(j).is_some_and(|t| t.text == "mut") {
            j += 1;
        }
        let simple = tokens.get(j).is_some_and(|t| t.kind == TokenKind::Ident)
            && tokens
                .get(j + 1)
                .is_some_and(|t| t.text == ":" || t.text == "=");
        if !simple {
            return (Escape::Unknown, stmt);
        }
        let name = tokens[j].text.as_str();
        let closures = closure_ranges(tokens, body);
        for u in end + 1..body.end.min(tokens.len()) {
            let t = &tokens[u];
            if t.kind != TokenKind::Ident || t.text != name {
                continue;
            }
            let prev = u.checked_sub(1).map(|p| tokens[p].text.as_str());
            if prev == Some(".") || prev == Some("::") {
                continue; // a field/assoc item of something else
            }
            if closures
                .iter()
                .any(|c| c.contains(&u) && !c.contains(&start))
            {
                return (Escape::Captured, stmt);
            }
            if let Some(escape) = classify_use(tokens, start, u) {
                return (escape, stmt);
            }
        }
        return (Escape::Local, stmt);
    }
    let expr_start = expression_start(tokens, start, at);
    (
        classify_expression_value(tokens, stmt.clone(), at, expr_start),
        stmt,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;
    use crate::model::Workspace;
    use crate::passes::AnalysisConfig;

    fn summaries(files: &[(&str, &str)]) -> (Workspace, Summaries) {
        let ws = Workspace::from_sources(files.iter().copied());
        let graph = CallGraph::build(&ws);
        let s = Summaries::compute(&ws, &graph, &AnalysisConfig::default());
        (ws, s)
    }

    fn find(ws: &Workspace, name: &str) -> usize {
        ws.fns
            .iter()
            .position(|f| f.qual_name() == name)
            .unwrap_or_else(|| panic!("no fn {name}"))
    }

    #[test]
    fn env_read_propagates_two_calls_deep_with_path() {
        let (ws, s) = summaries(&[(
            "crates/bench/src/lib.rs",
            "pub fn top() { mid(); }\n\
             fn mid() { leaf(); }\n\
             fn leaf() { let _ = std::env::var(\"X\"); }\n",
        )]);
        let top = find(&ws, "top");
        let leaf = find(&ws, "leaf");
        assert_eq!(s.taint_dist(top, Taint::EnvRead), 2);
        assert_eq!(s.taint_dist(leaf, Taint::EnvRead), 0);
        let path = s.taint_path(top, Taint::EnvRead);
        assert_eq!(path.len(), 3);
        assert_eq!(path[0], top);
        assert_eq!(path[2], leaf);
        assert_eq!(
            s.taint_site(leaf, Taint::EnvRead).unwrap().what,
            "std::env::var"
        );
    }

    #[test]
    fn sanctioned_crates_record_no_sites() {
        let (ws, s) = summaries(&[
            (
                "crates/config/src/lib.rs",
                "pub fn raw(name: &str) -> Option<String> { std::env::var(name).ok() }\n",
            ),
            (
                "crates/obs/src/wall.rs",
                "use std::time::Instant;\npub fn stamp() { let _t = Instant::now(); }\n",
            ),
            (
                "crates/parallel/src/lib.rs",
                "pub fn auto_threads() -> usize { std::thread::available_parallelism().map_or(1, usize::from) }\n",
            ),
            (
                "crates/selector/src/lib.rs",
                "pub fn uses_all() { anubis_config::raw(\"X\"); anubis_parallel::auto_threads(); }\n",
            ),
        ]);
        let caller = find(&ws, "uses_all");
        for taint in TAINTS {
            assert_eq!(
                s.taint_dist(caller, taint),
                usize::MAX,
                "taint {taint:?} leaked through a sanctioned crate"
            );
        }
    }

    #[test]
    fn unsanctioned_time_source_and_thread_id_are_sites() {
        let (ws, s) = summaries(&[(
            "crates/metrics/src/lib.rs",
            "pub fn stamp() { let _t = std::time::Instant::now(); }\n\
             pub fn me() { let _id = std::thread::current(); }\n",
        )]);
        assert_eq!(s.taint_dist(find(&ws, "stamp"), Taint::TimeSource), 0);
        assert_eq!(s.taint_dist(find(&ws, "me"), Taint::ThreadId), 0);
    }

    #[test]
    fn hash_iteration_and_unordered_reduce_detected() {
        let (ws, s) = summaries(&[(
            "crates/cluster/src/lib.rs",
            "use std::collections::HashMap;\n\
             pub fn total(m: &HashMap<u32, f64>) -> f64 { m.values().sum::<f64>() }\n",
        )]);
        let total = find(&ws, "total");
        assert_eq!(s.taint_dist(total, Taint::HashIter), 0);
        assert_eq!(s.taint_dist(total, Taint::UnorderedReduce), 0);
    }

    #[test]
    fn ordered_reduction_is_not_flagged() {
        let (ws, s) = summaries(&[(
            "crates/cluster/src/lib.rs",
            "pub fn total(v: &[f64]) -> f64 { v.iter().sum::<f64>() }\n",
        )]);
        assert_eq!(
            s.taint_dist(find(&ws, "total"), Taint::UnorderedReduce),
            usize::MAX
        );
    }

    #[test]
    fn alloc_distance_reaches_through_wrappers() {
        let (ws, s) = summaries(&[(
            "crates/nn/src/mlp.rs",
            "pub fn entry() { wrapper(); }\n\
             fn wrapper() { worker(); }\n\
             fn worker(x: &[f64]) { let _y = x.to_vec(); }\n\
             pub fn clean(x: f64) -> f64 { x * 2.0 }\n",
        )]);
        assert_eq!(s.alloc_dist(find(&ws, "entry")), 2);
        assert_eq!(s.alloc_dist(find(&ws, "clean")), usize::MAX);
        assert_eq!(s.alloc_sites[find(&ws, "worker")].len(), 1);
        assert_eq!(s.alloc_sites[find(&ws, "worker")][0].kind, "to_vec");
    }

    fn escapes_of(src: &str, fn_name: &str) -> Vec<(String, Escape)> {
        let (ws, s) = summaries(&[("crates/demo/src/lib.rs", src)]);
        let f = find(&ws, fn_name);
        s.alloc_sites[f]
            .iter()
            .map(|a| (a.kind.clone(), a.escape))
            .collect()
    }

    #[test]
    fn tail_expression_allocation_is_returned() {
        let sites = escapes_of("pub fn f() -> Vec<u32> { vec![1] }\n", "f");
        assert_eq!(sites, vec![("vec!".to_owned(), Escape::Returned)]);
    }

    #[test]
    fn binding_used_as_tail_value_is_returned() {
        let sites = escapes_of("pub fn f() -> Vec<u32> { let v = vec![1]; v }\n", "f");
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].1, Escape::Returned);
        assert!(sites[0].1.escapes());
    }

    #[test]
    fn explicit_return_is_returned() {
        let sites = escapes_of(
            "pub fn f(x: &[u32]) -> Vec<u32> { let v = x.to_vec(); return v; }\n",
            "f",
        );
        assert_eq!(sites, vec![("to_vec".to_owned(), Escape::Returned)]);
    }

    #[test]
    fn assignment_into_a_field_is_stored() {
        let sites = escapes_of(
            "pub struct S { buf: Vec<u32> }\n\
             impl S { pub fn set(&mut self) { self.buf = vec![1]; } }\n",
            "S::set",
        );
        assert_eq!(sites, vec![("vec!".to_owned(), Escape::Stored)]);
    }

    #[test]
    fn moved_into_a_call_is_stored() {
        let sites = escapes_of(
            "pub fn f(out: &mut Vec<Vec<u32>>) { out.push(vec![1]); }\n",
            "f",
        );
        assert_eq!(sites, vec![("vec!".to_owned(), Escape::Stored)]);
    }

    #[test]
    fn binding_pushed_by_value_is_stored() {
        let sites = escapes_of(
            "pub fn f(out: &mut Vec<Vec<u32>>) { let v = vec![1]; out.push(v); }\n",
            "f",
        );
        assert_eq!(sites, vec![("vec!".to_owned(), Escape::Stored)]);
    }

    #[test]
    fn closure_capture_is_captured() {
        let sites = escapes_of(
            "pub fn f() -> impl Fn() -> usize { let v = vec![1]; move || v.len() }\n",
            "f",
        );
        assert_eq!(sites, vec![("vec!".to_owned(), Escape::Captured)]);
    }

    #[test]
    fn borrow_only_binding_is_local() {
        let sites = escapes_of(
            "pub fn f(x: &[u32]) -> usize { let v = x.to_vec(); v.len() }\n",
            "f",
        );
        assert_eq!(sites, vec![("to_vec".to_owned(), Escape::Local)]);
        assert!(!sites[0].1.escapes());
    }

    #[test]
    fn borrowed_temporary_argument_is_local() {
        let sites = escapes_of(
            "pub fn f(out: &mut String, x: u32) { out.push_str(&format!(\"{x}\")); }\n",
            "f",
        );
        assert_eq!(sites, vec![("format!".to_owned(), Escape::Local)]);
    }

    #[test]
    fn dropped_chain_temporary_is_local() {
        let sites = escapes_of("pub fn f(x: &[u32]) { x.to_vec(); }\n", "f");
        assert_eq!(sites, vec![("to_vec".to_owned(), Escape::Local)]);
    }

    #[test]
    fn mem_take_through_mut_borrow_escapes() {
        let sites = escapes_of(
            "pub fn f() -> Vec<u32> { let mut v = vec![1]; std::mem::take(&mut v) }\n",
            "f",
        );
        assert_eq!(sites.len(), 1);
        assert!(sites[0].1.escapes(), "{sites:?}");
    }

    #[test]
    fn reassigned_and_indexed_binding_stays_local() {
        let sites = escapes_of(
            "pub fn f(n: usize) -> u32 { let mut v = vec![0u32; n]; v[0] = 1; v = vec![2]; v[0] }\n",
            "f",
        );
        assert_eq!(sites.len(), 2);
        assert_eq!(sites[0].1, Escape::Local, "{sites:?}");
    }

    #[test]
    fn collected_local_buffer_is_local_with_statement_span() {
        let (ws, s) = summaries(&[(
            "crates/demo/src/lib.rs",
            "pub fn f(x: &[u32]) -> usize {\n\
                 let v: Vec<u32> = x.iter().map(|a| a + 1).collect();\n\
                 v.len()\n\
             }\n",
        )]);
        let f = find(&ws, "f");
        assert_eq!(s.alloc_sites[f].len(), 1);
        let site = &s.alloc_sites[f][0];
        assert_eq!(site.kind, "collect");
        assert_eq!(site.escape, Escape::Local);
        assert_eq!(site.span, (2, 2), "statement span covers the let");
    }

    #[test]
    fn recursion_terminates_with_finite_distances() {
        let (ws, s) = summaries(&[(
            "crates/metrics/src/lib.rs",
            "pub fn ping(n: usize) { pong(n); let _ = std::env::var(\"X\"); }\n\
             pub fn pong(n: usize) { ping(n); }\n",
        )]);
        assert_eq!(s.taint_dist(find(&ws, "ping"), Taint::EnvRead), 0);
        assert_eq!(s.taint_dist(find(&ws, "pong"), Taint::EnvRead), 1);
        let path = s.taint_path(find(&ws, "pong"), Taint::EnvRead);
        assert_eq!(path.len(), 2, "witness path must not cycle: {path:?}");
    }
}

//! Analysis reporting: the committed finding baseline and SARIF-style
//! JSON output.
//!
//! The workspace intentionally vendors no JSON crate, so both the writer
//! and the (deliberately minimal) reader here are hand-rolled. The
//! baseline file is a flat map from [`Finding::key`](crate::passes::Finding::key)
//! to occurrence count:
//!
//! ```json
//! {
//!   "version": 1,
//!   "findings": {
//!     "A001 crates/selector/src/select.rs rank panic-reach": 1
//!   }
//! }
//! ```
//!
//! CI fails only on *regressions*: keys absent from the baseline or keys
//! whose count grew. Stale entries (fixed findings still listed) are also
//! reported so the baseline shrinks monotonically with the code.

use crate::passes::Finding;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Parsed or freshly-computed finding counts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Finding key → occurrence count, sorted by key.
    pub findings: BTreeMap<String, usize>,
}

/// One regression against the baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Regression {
    /// The finding key.
    pub key: String,
    /// Occurrences in the current tree.
    pub current: usize,
    /// Occurrences recorded in the baseline (0 when the key is new).
    pub baselined: usize,
}

impl Baseline {
    /// Aggregates findings into key counts. Enforced findings are
    /// excluded: they are hard failures the baseline must never absorb,
    /// so `--write-baseline` cannot launder them into acceptance.
    pub fn from_findings(findings: &[Finding]) -> Self {
        let mut map: BTreeMap<String, usize> = BTreeMap::new();
        for finding in findings.iter().filter(|f| !f.enforced) {
            *map.entry(finding.key()).or_insert(0) += 1;
        }
        Self { findings: map }
    }

    /// Serializes to the committed JSON format (stable key order,
    /// trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"version\": 1,\n  \"findings\": {");
        let mut first = true;
        for (key, count) in &self.findings {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\n    {}: {count}", json_string(key));
        }
        if !first {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }

    /// Parses baseline JSON. Accepts exactly the shape [`to_json`]
    /// produces (whitespace-insensitive); anything else is an error.
    ///
    /// [`to_json`]: Baseline::to_json
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            at: 0,
        };
        parser.expect(b'{')?;
        let mut findings = BTreeMap::new();
        let mut saw_version = false;
        loop {
            if parser.eat(b'}') {
                break;
            }
            let field = parser.string()?;
            parser.expect(b':')?;
            match field.as_str() {
                "version" => {
                    let version = parser.number()?;
                    if version != 1 {
                        return Err(format!("unsupported baseline version {version}"));
                    }
                    saw_version = true;
                }
                "findings" => {
                    parser.expect(b'{')?;
                    loop {
                        if parser.eat(b'}') {
                            break;
                        }
                        let key = parser.string()?;
                        parser.expect(b':')?;
                        let count = parser.number()?;
                        findings.insert(key, count);
                        parser.eat(b',');
                    }
                }
                other => return Err(format!("unknown baseline field `{other}`")),
            }
            parser.eat(b',');
        }
        if !saw_version {
            return Err("baseline missing `version` field".to_owned());
        }
        Ok(Self { findings })
    }

    /// Keys that regressed: new in `current`, or counted higher than the
    /// baseline records. Sorted by key.
    pub fn regressions(&self, current: &Baseline) -> Vec<Regression> {
        current
            .findings
            .iter()
            .filter_map(|(key, &count)| {
                let baselined = self.findings.get(key).copied().unwrap_or(0);
                (count > baselined).then(|| Regression {
                    key: key.clone(),
                    current: count,
                    baselined,
                })
            })
            .collect()
    }

    /// Baseline keys no longer present (or over-counted) — fixed findings
    /// whose entries should be pruned. Sorted by key.
    pub fn stale(&self, current: &Baseline) -> Vec<Regression> {
        self.findings
            .iter()
            .filter_map(|(key, &baselined)| {
                let count = current.findings.get(key).copied().unwrap_or(0);
                (count < baselined).then(|| Regression {
                    key: key.clone(),
                    current: count,
                    baselined,
                })
            })
            .collect()
    }
}

/// Human-readable audit trail of a `--write-baseline` refresh: one line
/// per key the rewrite prunes, shrinks, adds, or grows, so the diff a
/// reviewer sees in the regenerated file is also spelled out in the run
/// log. Empty when the refresh is a no-op.
pub fn refresh_summary(old: &Baseline, new: &Baseline) -> Vec<String> {
    let mut lines = Vec::new();
    for stale in old.stale(new) {
        if stale.current == 0 {
            lines.push(format!(
                "analyze: baseline - `{}` (fixed, was {})",
                stale.key, stale.baselined
            ));
        } else {
            lines.push(format!(
                "analyze: baseline ~ `{}` ({} -> {})",
                stale.key, stale.baselined, stale.current
            ));
        }
    }
    for grown in old.regressions(new) {
        if grown.baselined == 0 {
            lines.push(format!(
                "analyze: baseline + `{}` (new, now {})",
                grown.key, grown.current
            ));
        } else {
            lines.push(format!(
                "analyze: baseline ~ `{}` ({} -> {})",
                grown.key, grown.baselined, grown.current
            ));
        }
    }
    lines
}

/// The diagnostic rules, for the SARIF `rules` array.
const RULES: &[(&str, &str)] = &[
    (
        "A001",
        "Public fleet-facing API can transitively reach a panic",
    ),
    ("A002", "NaN-unsafe float comparison or ordering"),
    ("A003", "Allocation reachable from a hot entry point"),
    ("A004", "Nondeterminism can leak into results"),
    (
        "A005",
        "Lifecycle state constructed or mutated outside the transition function",
    ),
    (
        "A006",
        "Deterministic root transitively reaches a nondeterminism source",
    ),
    (
        "A007",
        "Parallel worker closure breaks the executor's determinism contract",
    ),
    (
        "A008",
        "Direct allocation in an arena-clean function bypasses anubis-arena",
    ),
];

/// Renders findings as a SARIF-like report. Baselined findings carry
/// `"level": "note"`; regressions carry `"level": "error"`.
pub fn to_sarif(findings: &[Finding], baseline: &Baseline) -> String {
    let current = Baseline::from_findings(findings);
    let mut out = String::from("{\n  \"version\": \"2.1.0\",\n  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n          \"name\": \"anubis-xtask-analyze\",\n          \"rules\": [\n");
    for (i, (id, desc)) in RULES.iter().enumerate() {
        let comma = if i + 1 < RULES.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "            {{\"id\": {}, \"shortDescription\": {{\"text\": {}}}}}{comma}",
            json_string(id),
            json_string(desc)
        );
    }
    out.push_str("          ]\n        }\n      },\n      \"results\": [\n");
    for (i, finding) in findings.iter().enumerate() {
        let key = finding.key();
        let baselined = !finding.enforced
            && baseline.findings.get(&key).copied().unwrap_or(0)
                >= current.findings.get(&key).copied().unwrap_or(0);
        let level = if baselined { "note" } else { "error" };
        let comma = if i + 1 < findings.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "        {{\"ruleId\": {rule}, \"level\": \"{level}\", \"message\": {{\"text\": {msg}}}, \
             \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": {uri}}}, \
             \"region\": {{\"startLine\": {line}}}}}}}], \
             \"properties\": {{\"key\": {key}, \"function\": {func}, \"kind\": {kind}, \"baselined\": {baselined}}}}}{comma}",
            rule = json_string(finding.code),
            msg = json_string(&finding.message),
            uri = json_string(&finding.path),
            line = finding.line,
            key = json_string(&key),
            func = json_string(&finding.func),
            kind = json_string(&finding.kind),
        );
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

/// JSON-escapes and quotes a string.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Minimal cursor over baseline JSON bytes.
struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.bytes.get(self.at).is_some_and(u8::is_ascii_whitespace) {
            self.at += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.at) == Some(&byte) {
            self.at += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", byte as char, self.at))
        }
    }

    fn eat(&mut self, byte: u8) -> bool {
        self.skip_ws();
        if self.bytes.get(self.at) == Some(&byte) {
            self.at += 1;
            true
        } else {
            false
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.at) {
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.bytes.get(self.at) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(other) => {
                            return Err(format!("unsupported escape `\\{}`", *other as char))
                        }
                        None => return Err("unterminated escape".to_owned()),
                    }
                    self.at += 1;
                }
                Some(&b) => {
                    out.push(b as char);
                    self.at += 1;
                }
                None => return Err("unterminated string".to_owned()),
            }
        }
    }

    fn number(&mut self) -> Result<usize, String> {
        self.skip_ws();
        let start = self.at;
        while self.bytes.get(self.at).is_some_and(u8::is_ascii_digit) {
            self.at += 1;
        }
        if start == self.at {
            return Err(format!("expected a number at byte {start}"));
        }
        std::str::from_utf8(&self.bytes[start..self.at])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| "number out of range".to_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(code: &'static str, path: &str, func: &str, kind: &str) -> Finding {
        Finding {
            code,
            path: path.to_owned(),
            line: 3,
            func: func.to_owned(),
            kind: kind.to_owned(),
            message: format!("message for {func}"),
            enforced: false,
        }
    }

    #[test]
    fn refresh_summary_reports_pruned_shrunk_added_and_grown_keys() {
        let make = |pairs: &[(&str, usize)]| Baseline {
            findings: pairs.iter().map(|(k, c)| ((*k).to_owned(), *c)).collect(),
        };
        let old = make(&[
            ("A004 f.rs g hash-iteration", 1),
            ("A001 f.rs h panic-reach", 3),
        ]);
        let new = make(&[("A001 f.rs h panic-reach", 2), ("A002 f.rs i float-eq", 1)]);
        let lines = refresh_summary(&old, &new);
        assert_eq!(
            lines,
            vec![
                "analyze: baseline ~ `A001 f.rs h panic-reach` (3 -> 2)".to_owned(),
                "analyze: baseline - `A004 f.rs g hash-iteration` (fixed, was 1)".to_owned(),
                "analyze: baseline + `A002 f.rs i float-eq` (new, now 1)".to_owned(),
            ]
        );
        assert!(refresh_summary(&new, &new).is_empty());
    }

    #[test]
    fn enforced_findings_never_enter_the_baseline() {
        let mut enforced = finding("A003", "crates/nn/src/mlp.rs", "forward_into", "clone");
        enforced.enforced = true;
        let tracked = finding("A003", "crates/nn/src/mlp.rs", "other", "clone");
        let baseline = Baseline::from_findings(&[enforced.clone(), tracked]);
        assert_eq!(baseline.findings.len(), 1);
        assert!(!baseline
            .findings
            .contains_key("A003 crates/nn/src/mlp.rs forward_into clone"));
        // SARIF reports enforced findings as errors even when an old
        // baseline happens to list their key.
        let mut old = Baseline::default();
        old.findings.insert(enforced.key(), 1);
        let sarif = to_sarif(&[enforced], &old);
        assert!(sarif.contains("\"level\": \"error\""));
    }

    #[test]
    fn baseline_roundtrips_through_json() {
        let findings = vec![
            finding("A001", "crates/a/src/lib.rs", "f", "panic-reach"),
            finding("A001", "crates/a/src/lib.rs", "f", "panic-reach"),
            finding("A003", "crates/b/src/lib.rs", "g", "clone"),
        ];
        let baseline = Baseline::from_findings(&findings);
        let parsed = Baseline::parse(&baseline.to_json()).expect("roundtrip");
        assert_eq!(parsed, baseline);
        assert_eq!(parsed.findings["A001 crates/a/src/lib.rs f panic-reach"], 2);
    }

    #[test]
    fn empty_baseline_roundtrips() {
        let baseline = Baseline::default();
        assert_eq!(Baseline::parse(&baseline.to_json()).unwrap(), baseline);
    }

    #[test]
    fn regressions_and_stale_are_detected() {
        let old = Baseline::from_findings(&[finding("A001", "a.rs", "f", "panic-reach")]);
        let new_findings = vec![
            finding("A001", "a.rs", "f", "panic-reach"),
            finding("A001", "a.rs", "f", "panic-reach"),
            finding("A002", "b.rs", "g", "float-eq"),
        ];
        let current = Baseline::from_findings(&new_findings);
        let regressions = old.regressions(&current);
        assert_eq!(regressions.len(), 2);
        assert_eq!(regressions[0].key, "A001 a.rs f panic-reach");
        assert_eq!(regressions[0].current, 2);
        assert_eq!(regressions[0].baselined, 1);
        assert_eq!(regressions[1].baselined, 0);

        let stale = current.stale(&old); // Viewing `old` as the tree.
        assert_eq!(stale.len(), 2);
    }

    #[test]
    fn parse_rejects_garbage_and_wrong_version() {
        assert!(Baseline::parse("not json").is_err());
        assert!(Baseline::parse("{\"version\": 2, \"findings\": {}}").is_err());
        assert!(Baseline::parse("{\"findings\": {}}").is_err());
    }

    #[test]
    fn sarif_marks_new_findings_as_errors() {
        let old = Baseline::from_findings(&[finding("A001", "a.rs", "f", "panic-reach")]);
        let findings = vec![
            finding("A001", "a.rs", "f", "panic-reach"),
            finding("A002", "b.rs", "g", "float-eq"),
        ];
        let sarif = to_sarif(&findings, &old);
        assert!(sarif.contains("\"ruleId\": \"A001\", \"level\": \"note\""));
        assert!(sarif.contains("\"ruleId\": \"A002\", \"level\": \"error\""));
        assert!(sarif.contains("\"startLine\": 3"));
    }

    #[test]
    fn json_strings_are_escaped() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn sarif_driver_lists_rule_metadata_for_every_code() {
        let sarif = to_sarif(&[], &Baseline::default());
        assert!(sarif.contains("\"name\": \"anubis-xtask-analyze\""));
        for code in [
            "A001", "A002", "A003", "A004", "A005", "A006", "A007", "A008",
        ] {
            assert!(
                sarif.contains(&format!("{{\"id\": \"{code}\", \"shortDescription\"")),
                "rule {code} missing from driver metadata"
            );
        }
        assert!(
            sarif.contains("bypasses anubis-arena"),
            "A008 description missing"
        );
    }

    #[test]
    fn sarif_escapes_paths_and_messages() {
        let mut f = finding("A002", "crates/odd\"name/src/lib.rs", "f", "float-eq");
        f.message = "compares `a\t== b`\nacross lines \\ backslash".to_owned();
        let sarif = to_sarif(&[f], &Baseline::default());
        assert!(sarif.contains("\"uri\": \"crates/odd\\\"name/src/lib.rs\""));
        assert!(sarif.contains("compares `a\\t== b`\\nacross lines \\\\ backslash"));
        // The escaped report must still be one well-formed JSON document.
        crate::json::parse(&sarif).expect("SARIF output parses as JSON");
    }

    #[test]
    fn sarif_properties_carry_the_baselined_marker_both_ways() {
        let suppressed = finding("A001", "a.rs", "f", "panic-reach");
        let fresh = finding("A002", "b.rs", "g", "float-eq");
        let old = Baseline::from_findings(std::slice::from_ref(&suppressed));
        let sarif = to_sarif(&[suppressed, fresh], &old);
        assert!(sarif.contains("\"baselined\": true"));
        assert!(sarif.contains("\"baselined\": false"));
    }
}

//! `cargo xtask perfgate` — the CI perf-regression gate.
//!
//! CI runs the quick Criterion smoke benches with `ANUBIS_BENCH_JSON`
//! pointed at `target/bench-current.jsonl`; the vendored harness appends
//! one `{"name":...,"median_ns":...}` line per benchmark. This module
//! compares those medians against the committed baseline — the
//! `"kernels"` object in `BENCH_2.json` at the workspace root — and fails
//! when any tracked kernel's median grew by more than the tolerance
//! (default 25%, overridable via `ANUBIS_BENCH_TOLERANCE`).
//!
//! A tracked kernel that produced no measurement also fails the gate: a
//! silently-skipped bench must not read as "no regression". Kernels that
//! were measured but are not in the baseline are reported informationally
//! so new benches can be promoted into the baseline deliberately
//! (`--print-baseline` emits the ready-to-commit `"kernels"` object).
//!
//! The full comparison is written to `target/BENCH_CURRENT.json` for CI
//! artifact upload.

use crate::json::{parse, JsonValue};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Default allowed growth of a kernel's median before the gate fails.
pub const DEFAULT_TOLERANCE: f64 = 0.25;

/// One tracked kernel's baseline-vs-current comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Benchmark name as printed by the harness.
    pub name: String,
    /// Committed baseline median, nanoseconds.
    pub baseline_ns: f64,
    /// This run's median, nanoseconds.
    pub current_ns: f64,
    /// `current / baseline`; `> 1 + tolerance` is a regression.
    pub ratio: f64,
    /// Whether this kernel fails the gate.
    pub regressed: bool,
}

/// The outcome of one gate run.
#[derive(Debug, Clone, Default)]
pub struct GateReport {
    /// Tolerance the comparisons were judged against.
    pub tolerance: f64,
    /// Tracked kernels that produced a measurement, baseline order.
    pub compared: Vec<Comparison>,
    /// Tracked kernels with no measurement this run — a gate failure.
    pub missing: Vec<String>,
    /// Measured kernels absent from the baseline — informational.
    pub untracked: Vec<String>,
}

impl GateReport {
    /// Whether the gate should fail the build.
    pub fn failed(&self) -> bool {
        !self.missing.is_empty() || self.compared.iter().any(|c| c.regressed)
    }

    /// Human-readable gate summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for c in &self.compared {
            let verdict = if c.regressed { "REGRESSED" } else { "ok" };
            let _ = writeln!(
                out,
                "perfgate: {:<36} baseline {:>12.0} ns  current {:>12.0} ns  x{:.3}  {}",
                c.name, c.baseline_ns, c.current_ns, c.ratio, verdict
            );
        }
        for name in &self.missing {
            let _ = writeln!(
                out,
                "perfgate: {name:<36} tracked in baseline but not measured — FAIL"
            );
        }
        for name in &self.untracked {
            let _ = writeln!(
                out,
                "perfgate: {name:<36} measured but not baselined (informational)"
            );
        }
        let regressions = self.compared.iter().filter(|c| c.regressed).count();
        let _ = writeln!(
            out,
            "perfgate: {} kernel(s) compared, {} regression(s), {} missing, tolerance {:.0}%",
            self.compared.len(),
            regressions,
            self.missing.len(),
            self.tolerance * 100.0
        );
        out
    }

    /// The `BENCH_CURRENT.json` artifact body.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"tolerance\": {},", self.tolerance);
        let _ = writeln!(
            out,
            "  \"status\": \"{}\",",
            if self.failed() { "fail" } else { "pass" }
        );
        out.push_str("  \"kernels\": {\n");
        for (i, c) in self.compared.iter().enumerate() {
            let comma = if i + 1 == self.compared.len() {
                ""
            } else {
                ","
            };
            let _ = writeln!(
                out,
                "    \"{}\": {{ \"baseline_ns\": {:.0}, \"current_ns\": {:.0}, \"ratio\": {:.4}, \"regressed\": {} }}{comma}",
                escape(&c.name),
                c.baseline_ns,
                c.current_ns,
                c.ratio,
                c.regressed
            );
        }
        out.push_str("  },\n");
        out.push_str("  \"missing\": [");
        out.push_str(
            &self
                .missing
                .iter()
                .map(|n| format!("\"{}\"", escape(n)))
                .collect::<Vec<_>>()
                .join(", "),
        );
        out.push_str("],\n");
        out.push_str("  \"untracked\": [");
        out.push_str(
            &self
                .untracked
                .iter()
                .map(|n| format!("\"{}\"", escape(n)))
                .collect::<Vec<_>>()
                .join(", "),
        );
        out.push_str("]\n}\n");
        out
    }
}

/// Escapes a benchmark name for embedding in a JSON string literal.
fn escape(name: &str) -> String {
    name.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Reads the committed baseline: the `"kernels"` object of `BENCH_2.json`
/// mapping benchmark name to median nanoseconds.
pub fn parse_baseline(text: &str) -> Result<BTreeMap<String, f64>, String> {
    let doc = parse(text)?;
    let kernels = doc
        .get("kernels")
        .ok_or("baseline has no \"kernels\" object")?;
    let obj = kernels
        .as_obj()
        .ok_or("baseline \"kernels\" is not an object")?;
    let mut out = BTreeMap::new();
    for (name, value) in obj {
        let ns = value
            .as_num()
            .ok_or_else(|| format!("kernel `{name}`: median is not a number"))?;
        out.insert(name.clone(), ns);
    }
    Ok(out)
}

/// Reads this run's measurements: JSONL lines of
/// `{"name": ..., "median_ns": ...}`. Re-runs append, so the last line
/// for a name wins.
pub fn parse_current(text: &str) -> Result<BTreeMap<String, f64>, String> {
    let mut out = BTreeMap::new();
    for (index, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value = parse(line).map_err(|e| format!("line {}: {e}", index + 1))?;
        let name = value
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("line {}: missing \"name\"", index + 1))?;
        let ns = value
            .get("median_ns")
            .and_then(JsonValue::as_num)
            .ok_or_else(|| format!("line {}: missing \"median_ns\"", index + 1))?;
        out.insert(name.to_owned(), ns);
    }
    Ok(out)
}

/// Judges `current` against `baseline` at `tolerance`.
pub fn compare(
    baseline: &BTreeMap<String, f64>,
    current: &BTreeMap<String, f64>,
    tolerance: f64,
) -> GateReport {
    let mut report = GateReport {
        tolerance,
        ..GateReport::default()
    };
    for (name, &baseline_ns) in baseline {
        match current.get(name) {
            Some(&current_ns) => {
                // A zero baseline would make every measurement an infinite
                // regression; treat it as untracked instead.
                if baseline_ns <= 0.0 {
                    report.untracked.push(name.clone());
                    continue;
                }
                let ratio = current_ns / baseline_ns;
                report.compared.push(Comparison {
                    name: name.clone(),
                    baseline_ns,
                    current_ns,
                    ratio,
                    regressed: ratio > 1.0 + tolerance,
                });
            }
            None => report.missing.push(name.clone()),
        }
    }
    for name in current.keys() {
        if !baseline.contains_key(name) {
            report.untracked.push(name.clone());
        }
    }
    report
}

/// Renders this run's measurements as a ready-to-commit `"kernels"`
/// object for baseline refreshes.
pub fn baseline_snippet(current: &BTreeMap<String, f64>) -> String {
    let mut out = String::from("  \"kernels\": {\n");
    for (i, (name, ns)) in current.iter().enumerate() {
        let comma = if i + 1 == current.len() { "" } else { "," };
        let _ = writeln!(out, "    \"{}\": {:.0}{comma}", escape(name), ns);
    }
    out.push_str("  }\n");
    out
}

/// Rotates a consumed bench-results file aside (to `<path>.consumed`,
/// replacing any earlier rotation) so the next gate run cannot silently
/// re-read stale measurements. The harness *appends* to the JSONL file,
/// so without rotation a gate run that forgot to re-bench would compare
/// against last run's numbers and read as "no regression". `perfgate`
/// calls this itself after a gate comparison — CI entry points must not
/// (and no longer do) `rm` the file by hand.
///
/// # Errors
///
/// Returns the underlying I/O error when the rename fails; the caller
/// treats that as a gate failure rather than risking a stale re-read.
pub fn rotate_consumed(path: &std::path::Path) -> Result<std::path::PathBuf, String> {
    let mut rotated = path.as_os_str().to_owned();
    rotated.push(".consumed");
    let rotated = std::path::PathBuf::from(rotated);
    std::fs::rename(path, &rotated)
        .map_err(|error| format!("cannot rotate {}: {error}", path.display()))?;
    Ok(rotated)
}

/// The gate tolerance: `ANUBIS_BENCH_TOLERANCE` when set and valid, else
/// [`DEFAULT_TOLERANCE`].
pub fn tolerance_from_env() -> Result<f64, String> {
    match anubis_config::raw("ANUBIS_BENCH_TOLERANCE") {
        Some(raw) => raw
            .trim()
            .parse::<f64>()
            .ok()
            .filter(|t| t.is_finite() && *t >= 0.0)
            .ok_or_else(|| format!("ANUBIS_BENCH_TOLERANCE=`{raw}` is not a non-negative number")),
        None => Ok(DEFAULT_TOLERANCE),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(pairs: &[(&str, f64)]) -> BTreeMap<String, f64> {
        pairs.iter().map(|(n, v)| ((*n).to_owned(), *v)).collect()
    }

    #[test]
    fn within_tolerance_passes() {
        let report = compare(
            &map(&[("cdf", 1000.0), ("scan", 2000.0)]),
            &map(&[("cdf", 1200.0), ("scan", 1500.0)]),
            0.25,
        );
        assert!(!report.failed(), "{}", report.render());
        assert_eq!(report.compared.len(), 2);
        assert!(report.to_json().contains("\"status\": \"pass\""));
    }

    #[test]
    fn regression_beyond_tolerance_fails() {
        let report = compare(&map(&[("cdf", 1000.0)]), &map(&[("cdf", 1251.0)]), 0.25);
        assert!(report.failed());
        assert!(report.compared.first().expect("compared").regressed);
        assert!(report.render().contains("REGRESSED"));
        assert!(report.to_json().contains("\"status\": \"fail\""));
    }

    #[test]
    fn missing_tracked_kernel_fails_untracked_is_informational() {
        let report = compare(&map(&[("cdf", 1000.0)]), &map(&[("brand-new", 10.0)]), 0.25);
        assert!(report.failed());
        assert_eq!(report.missing, vec!["cdf".to_owned()]);
        assert_eq!(report.untracked, vec!["brand-new".to_owned()]);

        let ok = compare(
            &map(&[("cdf", 1000.0)]),
            &map(&[("cdf", 900.0), ("brand-new", 10.0)]),
            0.25,
        );
        assert!(!ok.failed(), "untracked alone must not fail the gate");
    }

    #[test]
    fn report_surfaces_missing_and_untracked_in_both_outputs() {
        // The verdicts must be visible in the artifact and the console
        // summary, not just encoded in `failed()` — CI triage reads both.
        let report = compare(&map(&[("cdf", 1000.0)]), &map(&[("brand-new", 10.0)]), 0.25);

        let rendered = report.render();
        assert!(rendered.contains("cdf"));
        assert!(rendered.contains("tracked in baseline but not measured — FAIL"));
        assert!(rendered.contains("brand-new"));
        assert!(rendered.contains("measured but not baselined (informational)"));

        let json = report.to_json();
        assert!(json.contains("\"status\": \"fail\""));
        assert!(json.contains("\"missing\": [\"cdf\"]"));
        assert!(json.contains("\"untracked\": [\"brand-new\"]"));
    }

    #[test]
    fn parses_baseline_and_current_formats() {
        let baseline =
            parse_baseline("{\"issue\": 5, \"kernels\": {\"cdf\": 1200, \"scan/full\": 3e4}}")
                .expect("valid baseline");
        assert_eq!(baseline.get("scan/full"), Some(&30000.0));

        let current = parse_current(
            "{\"name\":\"cdf\",\"median_ns\":100}\n\n{\"name\":\"cdf\",\"median_ns\":140}\n",
        )
        .expect("valid current");
        assert_eq!(current.get("cdf"), Some(&140.0), "last line wins");

        assert!(parse_baseline("{\"issue\": 5}").is_err());
        assert!(parse_current("{\"median_ns\":1}\n").is_err());
    }

    #[test]
    fn baseline_snippet_round_trips_through_parse_baseline() {
        let current = map(&[("a/b", 123.6), ("c", 4.0)]);
        let snippet = format!("{{\n{}}}\n", baseline_snippet(&current));
        let parsed = parse_baseline(&snippet).expect("snippet parses");
        assert_eq!(parsed.get("a/b"), Some(&124.0));
        assert_eq!(parsed.get("c"), Some(&4.0));
    }

    #[test]
    fn rotate_consumed_moves_the_file_aside_and_replaces_prior_rotation() {
        let dir = std::env::temp_dir().join("anubis-perfgate-rotate-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("bench-current.jsonl");

        // First gate run consumes its measurements.
        std::fs::write(&path, "{\"name\":\"k\",\"median_ns\":10}\n").expect("write");
        let rotated = rotate_consumed(&path).expect("first rotation");
        assert!(!path.exists(), "consumed file must be moved away");
        assert_eq!(rotated, dir.join("bench-current.jsonl.consumed"));

        // Second run overwrites the previous rotation.
        std::fs::write(&path, "{\"name\":\"k\",\"median_ns\":20}\n").expect("write");
        rotate_consumed(&path).expect("second rotation");
        let kept = std::fs::read_to_string(&rotated).expect("rotated contents");
        assert!(kept.contains("20"), "latest consumption wins: {kept}");

        // A gate run with no fresh measurements has nothing to rotate.
        assert!(rotate_consumed(&path).is_err());
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}

//! Perf-gate kernel for the analyzer itself: the interprocedural
//! fixpoint engine runs on every CI push, so its wall-time is tracked in
//! BENCH_2.json like any hot kernel — a summary-propagation change that
//! blows up analysis time fails `cargo xtask perfgate` before it lands.

use anubis_xtask::model::Workspace;
use anubis_xtask::passes::{arena_able_report, run_analysis, AnalysisConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::path::PathBuf;

fn bench_analyze(c: &mut Criterion) {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let ws = Workspace::scan(&root).expect("scan workspace");
    let config = AnalysisConfig::default();
    // The full pass pipeline on the real tree: call graph, effect
    // summaries, all eight passes. Scanning is excluded — it is I/O
    // bound and measured indirectly by every other CI step.
    c.bench_function("xtask/analyze-passes", |bencher| {
        bencher.iter(|| black_box(run_analysis(black_box(&ws), black_box(&config))));
    });
    // The A008 escape computation in isolation: call graph, summaries
    // (every allocation site classified through the token-level escape
    // lattice) and the arena-able inventory over the hot-entry reach.
    // Statement discovery walks tokens per site, so a lattice regression
    // shows up here before it drags the full pipeline.
    c.bench_function("xtask/escape-analysis", |bencher| {
        bencher.iter(|| black_box(arena_able_report(black_box(&ws), black_box(&config))));
    });
}

criterion_group!(benches, bench_analyze);
criterion_main!(benches);

//! Multi-tenant workload-mix model (Figure 5).

use crate::model::ModelId;
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// One slice of the cluster's GPU-job mix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadClass {
    /// Human-readable label as it appears in Figure 5.
    pub label: &'static str,
    /// Fraction of GPU jobs in `[0, 1]`.
    pub share: f64,
    /// The zoo benchmark representing this class, when one exists.
    /// Unidentified / other workloads have none — they are exactly the gap
    /// micro-benchmarks exist to cover.
    pub representative: Option<ModelId>,
}

/// The Figure 5 job mix of a large multi-tenant AI cluster.
///
/// The paper analyzed 56k+ GPU jobs: three major categories (Transformers,
/// CNN, others), with 35.5% of Transformers unidentifiable from command
/// lines/logs. Shares below are calibrated to that description and sum to
/// 1.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadMix {
    classes: Vec<WorkloadClass>,
}

impl WorkloadMix {
    /// The Azure-internal mix the paper reports.
    pub fn azure_internal() -> Self {
        let classes = vec![
            WorkloadClass {
                label: "BERT",
                share: 0.089,
                representative: Some(ModelId::BertLarge),
            },
            WorkloadClass {
                label: "GPT",
                share: 0.078,
                representative: Some(ModelId::Gpt2Small),
            },
            WorkloadClass {
                label: "other Transformer",
                share: 0.092,
                representative: Some(ModelId::Gpt2Large),
            },
            WorkloadClass {
                label: "unidentified Transformer",
                share: 0.143,
                representative: None,
            },
            WorkloadClass {
                label: "ResNet",
                share: 0.141,
                representative: Some(ModelId::ResNet50),
            },
            WorkloadClass {
                label: "VGG",
                share: 0.062,
                representative: Some(ModelId::Vgg16),
            },
            WorkloadClass {
                label: "DenseNet",
                share: 0.048,
                representative: Some(ModelId::DenseNet169),
            },
            WorkloadClass {
                label: "other CNN",
                share: 0.092,
                representative: None,
            },
            WorkloadClass {
                label: "RNN/LSTM",
                share: 0.055,
                representative: Some(ModelId::Lstm),
            },
            WorkloadClass {
                label: "other/unknown",
                share: 0.2,
                representative: None,
            },
        ];
        Self { classes }
    }

    /// The class slices.
    pub fn classes(&self) -> &[WorkloadClass] {
        &self.classes
    }

    /// Total share of Transformer-family jobs.
    pub fn transformer_share(&self) -> f64 {
        self.classes
            .iter()
            .filter(|c| c.label.contains("Transformer") || c.label == "BERT" || c.label == "GPT")
            .map(|c| c.share)
            .sum()
    }

    /// Share of jobs representable by a zoo benchmark.
    pub fn representable_share(&self) -> f64 {
        self.classes
            .iter()
            .filter(|c| c.representative.is_some())
            .map(|c| c.share)
            .sum()
    }

    /// Samples a workload class proportionally to its share.
    pub fn sample(&self, rng: &mut ChaCha8Rng) -> &WorkloadClass {
        let total: f64 = self.classes.iter().map(|c| c.share).sum();
        let mut target = rng.random_range(0.0..total);
        for class in &self.classes {
            if target < class.share {
                return class;
            }
            target -= class.share;
        }
        self.classes.last().expect("mix is non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn shares_sum_to_one() {
        let mix = WorkloadMix::azure_internal();
        let total: f64 = mix.classes().iter().map(|c| c.share).sum();
        assert!((total - 1.0).abs() < 1e-9, "total {total}");
    }

    #[test]
    fn transformers_are_the_biggest_family() {
        let mix = WorkloadMix::azure_internal();
        let t = mix.transformer_share();
        assert!(t > 0.35 && t < 0.5, "transformer share {t}");
    }

    #[test]
    fn unidentified_transformer_fraction_matches_paper() {
        // 35.5% of Transformers are hard to identify.
        let mix = WorkloadMix::azure_internal();
        let unidentified = mix
            .classes()
            .iter()
            .find(|c| c.label == "unidentified Transformer")
            .unwrap()
            .share;
        let frac = unidentified / mix.transformer_share();
        assert!((frac - 0.355).abs() < 0.01, "fraction {frac}");
    }

    #[test]
    fn sampling_matches_shares() {
        let mix = WorkloadMix::azure_internal();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let n = 20_000;
        let mut resnet = 0usize;
        for _ in 0..n {
            if mix.sample(&mut rng).label == "ResNet" {
                resnet += 1;
            }
        }
        let freq = resnet as f64 / n as f64;
        assert!((freq - 0.141).abs() < 0.01, "sampled ResNet share {freq}");
    }

    #[test]
    fn representable_share_is_majority() {
        let mix = WorkloadMix::azure_internal();
        let r = mix.representable_share();
        assert!(r > 0.5, "zoo covers the majority of jobs: {r}");
        assert!(r < 1.0, "some workloads only micro-benchmarks can cover");
    }
}

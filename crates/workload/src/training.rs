//! Data-parallel training-step simulation.

use crate::model::ModelConfig;
use anubis_hwsim::perf::{overlapped_time_s, ring_allreduce_factor};
use anubis_hwsim::{NodeSim, NoiseModel, Precision};
use anubis_netsim::collective::ring_allreduce_time_s;
use anubis_netsim::FatTree;

/// Options controlling a simulated training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingOptions {
    /// Numeric precision of the run.
    pub precision: Precision,
    /// Number of steps to record.
    pub steps: usize,
    /// Warmup transient decay constant in steps (JIT/autotuning settle).
    pub warmup_decay_steps: f64,
    /// Period of the data-pipeline cycle (shuffle-buffer refills etc.).
    pub cycle_period: usize,
    /// Relative amplitude of the cycle's slow phase.
    pub cycle_amplitude: f64,
    /// Per-step measurement noise.
    pub noise: NoiseModel,
}

impl TrainingOptions {
    /// Standard validation run: FP16, `steps` steps, the default transient
    /// and cycle structure.
    pub fn validation(steps: usize) -> Self {
        Self {
            precision: Precision::Fp16,
            steps,
            warmup_decay_steps: 8.0,
            cycle_period: 48,
            cycle_amplitude: 0.03,
            noise: NoiseModel::TRAINING_STEP,
        }
    }

    /// FP32 variant of [`TrainingOptions::validation`].
    pub fn validation_fp32(steps: usize) -> Self {
        Self {
            precision: Precision::Fp32,
            ..Self::validation(steps)
        }
    }
}

/// True (noise-free) steady-state step time in seconds on one node.
///
/// Exposed so tests and the criteria experiments can reason about the
/// deterministic part of the model.
pub fn steady_step_time_s(node: &NodeSim, model: &ModelConfig, precision: Precision) -> f64 {
    let gpus = node.spec().gpus;
    // Effective compute rate: MFU × peak, degraded by compute faults and —
    // for memory-bound models — by HBM degradation.
    let hbm_factor = node.impact().hbm_bandwidth.clamp(0.0, 1.0);
    let tflops =
        node.effective_tflops(precision) * model.mfu * hbm_factor.powf(model.memory_sensitivity);
    let compute_s = model.train_flops_per_step_per_gpu() / (tflops * 1e12);
    // Kernel launch overhead (serialized on the launch thread).
    let launch_s = model.kernels_per_step as f64 * node.effective_kernel_launch_us() * 1e-6;
    // Intra-node gradient all-reduce over NVLink. Achievable bus bandwidth
    // is well below the aggregate link rate (NCCL on A100 reaches ~40% of
    // the 600 GB/s aggregate).
    const NVLINK_BUSBW_EFFICIENCY: f64 = 0.4;
    let ring = 2.0 * (gpus as f64 - 1.0) / gpus as f64;
    let nvlink_rate =
        node.effective_nvlink_gbps() * NVLINK_BUSBW_EFFICIENCY * ring_allreduce_factor(gpus) * 1e9;
    let comm_s = ring * model.gradient_bytes() / nvlink_rate;
    let overlap = model.overlap_efficiency * node.overlap_factor();
    overlapped_time_s(compute_s + launch_s, comm_s, overlap)
}

/// Per-step modulation shared by single- and multi-node runs: warmup
/// transient, data-pipeline cycle and a mild within-cycle ramp.
fn step_modulation(step: usize, opts: &TrainingOptions) -> f64 {
    let warmup = 1.0 + 1.2 * (-(step as f64) / opts.warmup_decay_steps.max(1e-9)).exp();
    let phase = step % opts.cycle_period.max(1);
    let cycle = if phase < 2 {
        1.0 + opts.cycle_amplitude
    } else {
        // Mild ramp within the cycle (shuffle buffer draining).
        1.0 + 0.02 * opts.cycle_amplitude * phase as f64 / opts.cycle_period.max(1) as f64
    };
    warmup * cycle
}

/// Simulates a single-node data-parallel training run.
///
/// Returns the per-step throughput series in samples/second — the exact
/// shape the Validator's end-to-end benchmarks consume.
///
/// # Examples
///
/// ```
/// use anubis_hwsim::{NodeId, NodeSim, NodeSpec};
/// use anubis_workload::{simulate_training, ModelId, TrainingOptions};
///
/// let mut node = NodeSim::new(NodeId(0), NodeSpec::a100_8x(), 1);
/// let series = simulate_training(&mut node, &ModelId::ResNet50.config(),
///                                &TrainingOptions::validation(64));
/// assert_eq!(series.len(), 64);
/// assert!(series.iter().all(|&t| t > 0.0));
/// ```
pub fn simulate_training(
    node: &mut NodeSim,
    model: &ModelConfig,
    opts: &TrainingOptions,
) -> Vec<f64> {
    let steady = steady_step_time_s(node, model, opts.precision);
    let global_batch = (model.batch_size_per_gpu * node.spec().gpus) as f64;
    (0..opts.steps)
        .map(|step| {
            let time = steady * step_modulation(step, opts) * node.draw_noise(opts.noise);
            global_batch / time
        })
        .collect()
}

/// Simulates a multi-node data-parallel run over a fabric.
///
/// `members` are fabric node indices, parallel to `nodes`. The step is
/// gated by the slowest node (gang scheduling) and adds the inter-node ring
/// all-reduce over the fat tree, scaled by the worst per-node NIC health.
///
/// # Panics
///
/// Panics if `nodes` and `members` lengths differ or `nodes` is empty.
pub fn simulate_multi_node_training(
    nodes: &mut [NodeSim],
    members: &[usize],
    fabric: &FatTree,
    model: &ModelConfig,
    opts: &TrainingOptions,
) -> Vec<f64> {
    assert_eq!(nodes.len(), members.len(), "one fabric index per node");
    assert!(!nodes.is_empty(), "need at least one node");
    // Slowest node gates the synchronized step.
    let slowest_local = nodes
        .iter()
        .map(|n| steady_step_time_s(n, model, opts.precision))
        .fold(0.0f64, f64::max);
    // Inter-node all-reduce over the fabric, derated by the worst NIC.
    let fabric_time =
        ring_allreduce_time_s(fabric, members, model.gradient_bytes()).unwrap_or(f64::INFINITY);
    let worst_nic = nodes
        .iter()
        .map(|n| n.impact().network_bandwidth)
        .fold(1.0f64, f64::min)
        .max(1e-6);
    let inter_comm = fabric_time / worst_nic;
    let overlap = model.overlap_efficiency
        * nodes
            .iter()
            .map(anubis_hwsim::NodeSim::overlap_factor)
            .fold(1.0f64, f64::min);
    let steady = overlapped_time_s(slowest_local, inter_comm, overlap);
    let global_batch = (model.batch_size_per_gpu * nodes[0].spec().gpus * nodes.len()) as f64;
    (0..opts.steps)
        .map(|step| {
            let noise = nodes[0].draw_noise(opts.noise);
            let time = steady * step_modulation(step, opts) * noise;
            global_batch / time
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelId;
    use anubis_hwsim::{FaultKind, NodeId, NodeSpec};
    use anubis_netsim::FatTreeConfig;

    fn node(seed: u64) -> NodeSim {
        NodeSim::new(NodeId(0), NodeSpec::a100_8x(), seed)
    }

    #[test]
    fn throughput_is_positive_and_warmup_is_slower() {
        let mut n = node(1);
        let series = simulate_training(
            &mut n,
            &ModelId::Gpt2Small.config(),
            &TrainingOptions::validation(128),
        );
        assert_eq!(series.len(), 128);
        let warmup_mean: f64 = series[..4].iter().sum::<f64>() / 4.0;
        let steady_mean: f64 = series[64..].iter().sum::<f64>() / 64.0;
        assert!(
            warmup_mean < steady_mean * 0.85,
            "warmup {warmup_mean} vs steady {steady_mean}"
        );
    }

    #[test]
    fn compute_fault_slows_training() {
        let mut healthy = node(2);
        let mut defective = node(2);
        defective.inject_fault(FaultKind::GpuComputeDegraded { severity: 0.3 });
        let model = ModelId::BertLarge.config();
        let t_h = steady_step_time_s(&healthy, &model, Precision::Fp16);
        let t_d = steady_step_time_s(&defective, &model, Precision::Fp16);
        assert!(t_d > t_h * 1.2, "{t_h} -> {t_d}");
        // And the throughput series reflects it.
        let opts = TrainingOptions::validation(32);
        let s_h = simulate_training(&mut healthy, &model, &opts);
        let s_d = simulate_training(&mut defective, &model, &opts);
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(mean(&s_d) < mean(&s_h) * 0.85);
    }

    #[test]
    fn resnet_is_less_nvlink_sensitive_than_vgg() {
        // The paper's motivating observation: some workloads barely
        // exercise the degraded path, so a defect only regresses specific
        // models. Break NVLink far past the redundancy budget.
        let mut defective = node(3);
        defective.inject_fault(FaultKind::NvLinkLanesDown { lanes: 88 });
        let healthy = node(3);
        let ratio = |model: ModelId| {
            let m = model.config();
            steady_step_time_s(&defective, &m, Precision::Fp16)
                / steady_step_time_s(&healthy, &m, Precision::Fp16)
        };
        let resnet = ratio(ModelId::ResNet50);
        let vgg = ratio(ModelId::Vgg16);
        assert!(resnet < 1.08, "ResNet slowdown {resnet}");
        assert!(vgg > 1.12, "VGG slowdown {vgg}");
        assert!(
            vgg > resnet + 0.05,
            "VGG ({vgg}) clearly above ResNet ({resnet})"
        );
    }

    #[test]
    fn lstm_is_sensitive_to_kernel_launch_overhead() {
        let mut defective = node(4);
        defective.inject_fault(FaultKind::KernelLaunchOverhead { severity: 0.5 });
        let healthy = node(4);
        let ratio = |model: ModelId| {
            let m = model.config();
            steady_step_time_s(&defective, &m, Precision::Fp16)
                / steady_step_time_s(&healthy, &m, Precision::Fp16)
        };
        assert!(ratio(ModelId::Lstm) > ratio(ModelId::ResNet50));
        assert!(ratio(ModelId::Lstm) > 1.05);
    }

    #[test]
    fn fp16_is_faster_than_fp32() {
        let n = node(5);
        let model = ModelId::BertLarge.config();
        let fp16 = steady_step_time_s(&n, &model, Precision::Fp16);
        let fp32 = steady_step_time_s(&n, &model, Precision::Fp32);
        assert!(fp32 > fp16 * 2.0, "fp32 {fp32} vs fp16 {fp16}");
    }

    #[test]
    fn series_has_periodic_structure() {
        let mut n = node(6);
        let mut opts = TrainingOptions::validation(256);
        opts.noise = NoiseModel::new(0.0);
        let series = simulate_training(&mut n, &ModelId::ResNet50.config(), &opts);
        // The cycle's slow phase (steps ≡ 0, 1 mod 48) is slower than
        // mid-cycle steps, past the warmup transient.
        let slow = series[96];
        let fast = series[96 + 20];
        assert!(slow < fast * 0.98, "cycle visible: {slow} vs {fast}");
    }

    #[test]
    fn multi_node_scales_but_sublinearly() {
        let fabric = FatTree::build(FatTreeConfig::figure3_testbed()).unwrap();
        let model = ModelId::Gpt2Large.config();
        let opts = TrainingOptions::validation(16);
        let mut single = vec![node(7)];
        let s1 = simulate_multi_node_training(&mut single, &[0], &fabric, &model, &opts);
        let mut four: Vec<NodeSim> = (0..4)
            .map(|i| NodeSim::new(NodeId(i), NodeSpec::a100_8x(), 7))
            .collect();
        let s4 = simulate_multi_node_training(&mut four, &[0, 1, 2, 3], &fabric, &model, &opts);
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let speedup = mean(&s4) / mean(&s1);
        assert!(speedup > 2.0 && speedup < 4.0, "speedup {speedup}");
    }

    #[test]
    fn one_slow_node_gates_the_gang() {
        let fabric = FatTree::build(FatTreeConfig::figure3_testbed()).unwrap();
        let model = ModelId::BertLarge.config();
        let opts = TrainingOptions::validation(8);
        let mut clean: Vec<NodeSim> = (0..4)
            .map(|i| NodeSim::new(NodeId(i), NodeSpec::a100_8x(), 11))
            .collect();
        let baseline =
            simulate_multi_node_training(&mut clean, &[0, 1, 2, 3], &fabric, &model, &opts);
        let mut tainted: Vec<NodeSim> = (0..4)
            .map(|i| NodeSim::new(NodeId(i), NodeSpec::a100_8x(), 11))
            .collect();
        tainted[2].inject_fault(FaultKind::GpuComputeDegraded { severity: 0.4 });
        let slowed =
            simulate_multi_node_training(&mut tainted, &[0, 1, 2, 3], &fabric, &model, &opts);
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(mean(&slowed) < mean(&baseline) * 0.8);
    }

    #[test]
    #[should_panic(expected = "one fabric index per node")]
    fn multi_node_validates_member_lengths() {
        let fabric = FatTree::build(FatTreeConfig::figure3_testbed()).unwrap();
        let mut nodes = vec![node(1)];
        simulate_multi_node_training(
            &mut nodes,
            &[0, 1],
            &fabric,
            &ModelId::ResNet50.config(),
            &TrainingOptions::validation(1),
        );
    }
}

//! Analytic AI workload models and training-step simulation.
//!
//! ANUBIS's end-to-end benchmarks (Table 2) train representative models —
//! CNNs (ResNet/DenseNet/VGG), an LSTM, and Transformers (BERT/GPT-2) —
//! and record per-step throughput series. This crate replaces real
//! framework runs with analytic cost models replayed over
//! [`anubis_hwsim::NodeSim`] (and [`anubis_netsim::FatTree`] for multi-node
//! jobs):
//!
//! - [`model`]: the model zoo with parameter counts, per-sample FLOPs,
//!   gradient sizes, kernel counts, and sensitivity profiles;
//! - [`training`]: single-node and multi-node data-parallel step
//!   simulation producing realistic throughput time series (warmup
//!   transients, periodic data-loading cycles, measurement noise);
//! - [`mix`]: the Figure 5 workload-mix model of a multi-tenant cluster.

pub mod mix;
pub mod model;
pub mod training;

pub use mix::{WorkloadClass, WorkloadMix};
pub use model::{ModelConfig, ModelFamily, ModelId};
pub use training::{simulate_multi_node_training, simulate_training, TrainingOptions};

//! The representative model zoo.
//!
//! The paper picks foundational models by mining an internal training
//! platform's workload distribution and the most prevalent hyper-parameters
//! (batch size, sequence length). The analytic configs below use published
//! parameter counts and per-sample FLOPs; the *sensitivity* fields encode
//! how strongly each family responds to each hardware path, which is what
//! gives the simulated benchmarks the paper's detection profile (e.g.
//! ResNet barely stresses the network, GPT-2 stresses everything).

/// Model family, used for efficiency profiles and the Figure 5 mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelFamily {
    /// Convolutional networks.
    Cnn,
    /// Recurrent networks.
    Rnn,
    /// Attention-based models.
    Transformer,
}

/// Identifier of a zoo model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize)]
pub enum ModelId {
    /// ResNet-50.
    ResNet50,
    /// ResNet-101.
    ResNet101,
    /// ResNet-152.
    ResNet152,
    /// DenseNet-169.
    DenseNet169,
    /// DenseNet-201.
    DenseNet201,
    /// VGG-11.
    Vgg11,
    /// VGG-13.
    Vgg13,
    /// VGG-16.
    Vgg16,
    /// VGG-19.
    Vgg19,
    /// 2-layer LSTM language model.
    Lstm,
    /// BERT-large.
    BertLarge,
    /// GPT-2 small (124M).
    Gpt2Small,
    /// GPT-2 large (774M).
    Gpt2Large,
}

impl ModelId {
    /// Every model in the zoo, in Table 2 order.
    pub const ALL: [ModelId; 13] = [
        ModelId::ResNet50,
        ModelId::ResNet101,
        ModelId::ResNet152,
        ModelId::DenseNet169,
        ModelId::DenseNet201,
        ModelId::Vgg11,
        ModelId::Vgg13,
        ModelId::Vgg16,
        ModelId::Vgg19,
        ModelId::Lstm,
        ModelId::BertLarge,
        ModelId::Gpt2Small,
        ModelId::Gpt2Large,
    ];

    /// The representative per-family subset used in the Figure 9 / Table 5
    /// experiments (ResNet, DenseNet, VGG, LSTM, BERT, GPT-2).
    pub const REPRESENTATIVES: [ModelId; 6] = [
        ModelId::ResNet50,
        ModelId::DenseNet169,
        ModelId::Vgg16,
        ModelId::Lstm,
        ModelId::BertLarge,
        ModelId::Gpt2Small,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Self::ResNet50 => "ResNet-50",
            Self::ResNet101 => "ResNet-101",
            Self::ResNet152 => "ResNet-152",
            Self::DenseNet169 => "DenseNet-169",
            Self::DenseNet201 => "DenseNet-201",
            Self::Vgg11 => "VGG-11",
            Self::Vgg13 => "VGG-13",
            Self::Vgg16 => "VGG-16",
            Self::Vgg19 => "VGG-19",
            Self::Lstm => "LSTM",
            Self::BertLarge => "BERT-large",
            Self::Gpt2Small => "GPT-2 small",
            Self::Gpt2Large => "GPT-2 large",
        }
    }

    /// Analytic configuration of the model.
    pub fn config(&self) -> ModelConfig {
        match self {
            Self::ResNet50 => ModelConfig::cnn(*self, 25.6e6, 4.1e9, 192, 180),
            Self::ResNet101 => ModelConfig::cnn(*self, 44.5e6, 7.8e9, 192, 340),
            Self::ResNet152 => ModelConfig::cnn(*self, 60.2e6, 11.5e9, 128, 500),
            Self::DenseNet169 => ModelConfig::cnn(*self, 14.1e6, 3.4e9, 128, 590),
            Self::DenseNet201 => ModelConfig::cnn(*self, 20.0e6, 4.3e9, 128, 700),
            Self::Vgg11 => ModelConfig::cnn(*self, 132.9e6, 7.6e9, 128, 40),
            Self::Vgg13 => ModelConfig::cnn(*self, 133.0e6, 11.3e9, 128, 45),
            Self::Vgg16 => ModelConfig::cnn(*self, 138.4e6, 15.5e9, 128, 55),
            Self::Vgg19 => ModelConfig::cnn(*self, 143.7e6, 19.6e9, 96, 65),
            Self::Lstm => ModelConfig {
                id: *self,
                family: ModelFamily::Rnn,
                parameters: 33.0e6,
                forward_flops_per_sample: 8.4e9,
                batch_size_per_gpu: 64,
                sequence_length: 128,
                kernels_per_step: 3200, // seq_len × gates × layers: launch-bound
                mfu: 0.18,
                memory_sensitivity: 0.55,
                overlap_efficiency: 0.55,
            },
            Self::BertLarge => ModelConfig {
                id: *self,
                family: ModelFamily::Transformer,
                parameters: 340.0e6,
                forward_flops_per_sample: 120.0e9,
                batch_size_per_gpu: 32,
                sequence_length: 128,
                kernels_per_step: 900,
                mfu: 0.48,
                memory_sensitivity: 0.25,
                overlap_efficiency: 0.75,
            },
            Self::Gpt2Small => ModelConfig {
                id: *self,
                family: ModelFamily::Transformer,
                parameters: 124.0e6,
                forward_flops_per_sample: 290.0e9,
                batch_size_per_gpu: 16,
                sequence_length: 1024,
                kernels_per_step: 600,
                mfu: 0.5,
                memory_sensitivity: 0.22,
                overlap_efficiency: 0.78,
            },
            Self::Gpt2Large => ModelConfig {
                id: *self,
                family: ModelFamily::Transformer,
                parameters: 774.0e6,
                forward_flops_per_sample: 1.75e12,
                batch_size_per_gpu: 8,
                sequence_length: 1024,
                kernels_per_step: 1800,
                mfu: 0.52,
                memory_sensitivity: 0.2,
                overlap_efficiency: 0.8,
            },
        }
    }
}

/// Analytic cost model of one training workload.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelConfig {
    /// Which zoo model this is.
    pub id: ModelId,
    /// Model family.
    pub family: ModelFamily,
    /// Trainable parameter count.
    pub parameters: f64,
    /// Forward-pass FLOPs per sample (training costs ≈ 3×).
    pub forward_flops_per_sample: f64,
    /// Most prevalent per-GPU batch size.
    pub batch_size_per_gpu: usize,
    /// Sequence length (1 for CNNs).
    pub sequence_length: usize,
    /// Kernel launches per step (drives launch-overhead sensitivity).
    pub kernels_per_step: usize,
    /// Model FLOPs utilization on healthy hardware.
    pub mfu: f64,
    /// Exponent of the HBM-bandwidth factor in effective compute rate:
    /// 0 = pure compute-bound, 1 = pure memory-bound.
    pub memory_sensitivity: f64,
    /// Fraction of communication hidden behind compute on healthy nodes.
    pub overlap_efficiency: f64,
}

impl ModelConfig {
    fn cnn(
        id: ModelId,
        parameters: f64,
        forward_flops: f64,
        batch: usize,
        layers_kernels: usize,
    ) -> Self {
        Self {
            id,
            family: ModelFamily::Cnn,
            parameters,
            forward_flops_per_sample: forward_flops,
            batch_size_per_gpu: batch,
            sequence_length: 1,
            kernels_per_step: layers_kernels * 3,
            mfu: 0.42,
            memory_sensitivity: 0.35,
            overlap_efficiency: 0.65,
        }
    }

    /// Training FLOPs per step per GPU (forward + backward ≈ 3×).
    pub fn train_flops_per_step_per_gpu(&self) -> f64 {
        3.0 * self.forward_flops_per_sample * self.batch_size_per_gpu as f64
    }

    /// Gradient bytes exchanged per step (FP16 gradients: 2 bytes each).
    pub fn gradient_bytes(&self) -> f64 {
        self.parameters * 2.0
    }

    /// Rough communication-to-computation intensity: gradient bytes per
    /// training GFLOP. VGG (heavy parameters, light compute) scores high,
    /// ResNet low — which is why defective links hit VGG harder.
    pub fn comm_intensity(&self) -> f64 {
        self.gradient_bytes() / (self.train_flops_per_step_per_gpu() / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_is_complete_and_named() {
        assert_eq!(ModelId::ALL.len(), 13);
        for id in ModelId::ALL {
            let cfg = id.config();
            assert_eq!(cfg.id, id);
            assert!(!id.name().is_empty());
            assert!(cfg.parameters > 1e6, "{}", id.name());
            assert!(cfg.forward_flops_per_sample > 1e9, "{}", id.name());
            assert!(cfg.batch_size_per_gpu > 0);
            assert!(cfg.mfu > 0.0 && cfg.mfu < 1.0);
            assert!((0.0..=1.0).contains(&cfg.memory_sensitivity));
            assert!((0.0..=1.0).contains(&cfg.overlap_efficiency));
        }
    }

    #[test]
    fn representatives_cover_families() {
        use std::collections::HashSet;
        let families: HashSet<ModelFamily> = ModelId::REPRESENTATIVES
            .iter()
            .map(|m| m.config().family)
            .collect();
        assert!(families.contains(&ModelFamily::Cnn));
        assert!(families.contains(&ModelFamily::Rnn));
        assert!(families.contains(&ModelFamily::Transformer));
    }

    #[test]
    fn vgg_is_more_comm_intense_than_resnet() {
        let vgg = ModelId::Vgg16.config().comm_intensity();
        let resnet = ModelId::ResNet50.config().comm_intensity();
        assert!(
            vgg > 1.5 * resnet,
            "VGG comm intensity {vgg} should clearly exceed ResNet {resnet}"
        );
    }

    #[test]
    fn lstm_is_launch_bound() {
        let lstm = ModelId::Lstm.config();
        let bert = ModelId::BertLarge.config();
        assert!(lstm.kernels_per_step > 3 * bert.kernels_per_step);
        assert!(lstm.mfu < bert.mfu);
    }

    #[test]
    fn bigger_models_cost_more() {
        let small = ModelId::Gpt2Small.config();
        let large = ModelId::Gpt2Large.config();
        assert!(large.parameters > small.parameters);
        assert!(large.train_flops_per_step_per_gpu() > small.train_flops_per_step_per_gpu());
    }
}

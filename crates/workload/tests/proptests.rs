//! Property-based tests for the workload cost models.

use anubis_hwsim::{FaultKind, NodeId, NodeSim, NodeSpec, Precision};
use anubis_workload::training::steady_step_time_s;
use anubis_workload::{simulate_training, ModelId, TrainingOptions};
use proptest::prelude::*;

fn model_strategy() -> impl Strategy<Value = ModelId> {
    prop::sample::select(ModelId::ALL.to_vec())
}

proptest! {
    /// Throughput is finite and positive for every model, precision and
    /// seed, and series have the requested length.
    #[test]
    fn throughput_is_well_formed(model in model_strategy(), seed in 0u64..400, fp32 in any::<bool>()) {
        let mut node = NodeSim::new(NodeId(0), NodeSpec::h100_8x(), seed);
        let mut opts = TrainingOptions::validation(48);
        if fp32 {
            opts.precision = Precision::Fp32;
        }
        let series = simulate_training(&mut node, &model.config(), &opts);
        prop_assert_eq!(series.len(), 48);
        for &t in &series {
            prop_assert!(t.is_finite() && t > 0.0);
        }
    }

    /// More compute degradation always means slower steady steps
    /// (monotonicity of the cost model in severity).
    #[test]
    fn step_time_is_monotone_in_severity(
        model in model_strategy(),
        sev_lo in 0.01f64..0.3,
        delta in 0.05f64..0.4,
    ) {
        let healthy = NodeSim::new(NodeId(1), NodeSpec::a100_8x(), 5);
        let mut mild = NodeSim::new(NodeId(1), NodeSpec::a100_8x(), 5);
        mild.inject_fault(FaultKind::GpuComputeDegraded { severity: sev_lo });
        let mut severe = NodeSim::new(NodeId(1), NodeSpec::a100_8x(), 5);
        severe.inject_fault(FaultKind::GpuComputeDegraded { severity: sev_lo + delta });
        let cfg = model.config();
        let t0 = steady_step_time_s(&healthy, &cfg, Precision::Fp16);
        let t1 = steady_step_time_s(&mild, &cfg, Precision::Fp16);
        let t2 = steady_step_time_s(&severe, &cfg, Precision::Fp16);
        prop_assert!(t0 < t1 && t1 < t2, "{t0} < {t1} < {t2}");
    }

    /// Step time scales (weakly) inversely with hardware generation: the
    /// H100 never loses to the A100 on the same model.
    #[test]
    fn newer_hardware_is_never_slower(model in model_strategy()) {
        let a100 = NodeSim::new(NodeId(2), NodeSpec::a100_8x(), 9);
        let h100 = NodeSim::new(NodeId(2), NodeSpec::h100_8x(), 9);
        let cfg = model.config();
        let t_a = steady_step_time_s(&a100, &cfg, Precision::Fp16);
        let t_h = steady_step_time_s(&h100, &cfg, Precision::Fp16);
        prop_assert!(t_h <= t_a, "H100 {t_h} vs A100 {t_a}");
    }
}

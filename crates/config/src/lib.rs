//! Sanctioned process-environment shim.
//!
//! ANUBIS promises bit-identical outputs for identical seeds, so the
//! `cargo xtask analyze` A006 pass treats `std::env` reads as
//! nondeterminism taint sources — a run's result must never depend on
//! ambient process state. This crate is the one sanctioned exception
//! ([`AnalysisConfig::env_shims`]): every knob it serves is
//! *performance-shaped only* — thread counts, incremental-path toggles,
//! perf-gate tolerances — values that change wall-clock time or gate
//! strictness but never a computed number. Routing all env reads through
//! here keeps that contract auditable: a `std::env` call anywhere else in
//! the workspace is a finding, and a reviewer approving a new call-site
//! *in this crate* is consciously asserting the knob is
//! determinism-neutral.
//!
//! The crate is a dependency leaf (std only) so even `anubis-parallel`,
//! which nothing else may depend on, can use it.
//!
//! [`AnalysisConfig::env_shims`]: ../anubis_xtask/passes/struct.AnalysisConfig.html#structfield.env_shims
#![forbid(unsafe_code)]

use std::str::FromStr;

/// The raw value of environment variable `name`, if set and valid
/// Unicode. Use when the caller must distinguish *unset* from *invalid*
/// (the perf gate reports a typo in its tolerance override instead of
/// silently falling back).
#[must_use]
pub fn raw(name: &str) -> Option<String> {
    std::env::var(name).ok()
}

/// Boolean knob: `default` when `name` is unset, `false` when its
/// trimmed value is `"0"`, `true` otherwise. This is the fleet-script
/// convention (`ANUBIS_INCREMENTAL=0` disables, anything else enables).
#[must_use]
pub fn enabled(name: &str, default: bool) -> bool {
    raw(name).map_or(default, |v| v.trim() != "0")
}

/// Parses the trimmed value of `name`, returning `None` when the
/// variable is unset or fails to parse. Callers supply their own default
/// via `unwrap_or`.
#[must_use]
pub fn parsed<T: FromStr>(name: &str) -> Option<T> {
    raw(name).and_then(|v| v.trim().parse().ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    // Process-global state: each test uses its own variable name so
    // parallel test threads never race on a shared key.

    #[test]
    fn enabled_honors_default_and_zero() {
        let name = "ANUBIS_CONFIG_TEST_ENABLED";
        assert!(enabled(name, true));
        assert!(!enabled(name, false));
        std::env::set_var(name, "0");
        assert!(!enabled(name, true));
        std::env::set_var(name, " 0 ");
        assert!(!enabled(name, true));
        std::env::set_var(name, "1");
        assert!(enabled(name, false));
        std::env::set_var(name, "yes");
        assert!(enabled(name, false));
        std::env::remove_var(name);
    }

    #[test]
    fn parsed_trims_and_rejects_garbage() {
        let name = "ANUBIS_CONFIG_TEST_PARSED";
        assert_eq!(parsed::<usize>(name), None);
        std::env::set_var(name, " 12 ");
        assert_eq!(parsed::<usize>(name), Some(12));
        std::env::set_var(name, "twelve");
        assert_eq!(parsed::<usize>(name), None);
        std::env::remove_var(name);
    }

    #[test]
    fn raw_distinguishes_unset_from_set() {
        let name = "ANUBIS_CONFIG_TEST_RAW";
        assert_eq!(raw(name), None);
        std::env::set_var(name, "0.4");
        assert_eq!(raw(name).as_deref(), Some("0.4"));
        std::env::remove_var(name);
    }
}

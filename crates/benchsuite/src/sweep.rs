//! Micro-benchmark parameter search.
//!
//! Section 3.4's repeatability guideline 2: "adaptively search for
//! benchmark parameters to reduce benchmark duration for the given
//! hardware/software combination". For bandwidth-style micro-benchmarks
//! the dominant parameter is the message size: too small measures latency,
//! too large wastes validation time. This module sweeps message sizes and
//! picks the smallest size that reaches a saturation fraction of the
//! plateau bandwidth.

use anubis_hwsim::NodeSim;

/// One sweep point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Message size in bytes.
    pub bytes: u64,
    /// Measured bandwidth (GB/s).
    pub bandwidth: f64,
}

/// Result of a message-size sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResult {
    /// All measured points, ascending by size.
    pub points: Vec<SweepPoint>,
    /// Smallest size reaching the saturation fraction of the plateau.
    pub saturation_bytes: u64,
    /// Bandwidth at the plateau (largest size measured).
    pub plateau_bandwidth: f64,
}

impl SweepResult {
    /// Fraction of the sweep's sizes that can be skipped in future
    /// validations (sizes above saturation measure nothing new).
    pub fn skippable_fraction(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        let skippable = self
            .points
            .iter()
            .filter(|p| p.bytes > self.saturation_bytes)
            .count();
        skippable as f64 / self.points.len() as f64
    }
}

/// Default size grid: powers of two from 64 KiB to 512 MiB.
pub fn default_size_grid() -> Vec<u64> {
    (16..=29).map(|p| 1u64 << p).collect()
}

/// Sweeps the intra-node all-reduce across message sizes and locates the
/// saturation point (the smallest size achieving `saturation` — e.g. 0.95
/// — of the plateau bandwidth).
///
/// # Panics
///
/// Panics if `sizes` is empty; callers pass [`default_size_grid`] or a
/// non-empty custom grid.
pub fn sweep_nvlink_allreduce(node: &mut NodeSim, sizes: &[u64], saturation: f64) -> SweepResult {
    assert!(!sizes.is_empty(), "sweep needs at least one size");
    let mut points: Vec<SweepPoint> = sizes
        .iter()
        .map(|&bytes| SweepPoint {
            bytes,
            bandwidth: node.measure_nvlink_allreduce_gbps(bytes),
        })
        .collect();
    points.sort_by_key(|p| p.bytes);
    // The assert above guarantees a last point; the fallback value is
    // unreachable and only keeps this path panic-free.
    let last = points.last().copied().unwrap_or(SweepPoint {
        bytes: 0,
        bandwidth: 0.0,
    });
    let plateau = last.bandwidth;
    let threshold = plateau * saturation.clamp(0.0, 1.0);
    let saturation_bytes = points
        .iter()
        .find(|p| p.bandwidth >= threshold)
        .map_or(last.bytes, |p| p.bytes);
    SweepResult {
        points,
        saturation_bytes,
        plateau_bandwidth: plateau,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anubis_hwsim::{NodeId, NodeSpec};

    fn node() -> NodeSim {
        NodeSim::new(NodeId(0), NodeSpec::a100_8x(), 3)
    }

    #[test]
    fn bandwidth_grows_then_saturates() {
        let mut n = node();
        let result = sweep_nvlink_allreduce(&mut n, &default_size_grid(), 0.95);
        // Tiny messages are far below the plateau.
        assert!(result.points[0].bandwidth < result.plateau_bandwidth * 0.2);
        // The saturation point sits well inside the grid.
        assert!(result.saturation_bytes > result.points[0].bytes);
        assert!(
            result.saturation_bytes < result.points.last().unwrap().bytes,
            "saturation {} should be before the grid end",
            result.saturation_bytes
        );
        assert!(result.skippable_fraction() > 0.1);
    }

    #[test]
    fn stricter_saturation_needs_bigger_messages() {
        let mut a = node();
        let loose = sweep_nvlink_allreduce(&mut a, &default_size_grid(), 0.8);
        let mut b = node();
        let strict = sweep_nvlink_allreduce(&mut b, &default_size_grid(), 0.99);
        assert!(strict.saturation_bytes >= loose.saturation_bytes);
    }

    #[test]
    fn single_size_grid_degenerates_gracefully() {
        let mut n = node();
        let result = sweep_nvlink_allreduce(&mut n, &[1 << 26], 0.95);
        assert_eq!(result.points.len(), 1);
        assert_eq!(result.saturation_bytes, 1 << 26);
        assert_eq!(result.skippable_fraction(), 0.0);
    }
}

//! Benchmark execution over simulated nodes and fabric.

use crate::id::{BenchmarkId, Phase};
use anubis_hwsim::node::DiskMode;
use anubis_hwsim::{NodeId, NodeSim, NoiseModel, Precision};
use anubis_metrics::{MetricsError, Sample};
use anubis_netsim::collective::{all_to_all_completion_s, ring_allreduce_busbw};
use anubis_netsim::{concurrent_pair_bandwidths, full_scan_rounds, FatTree, NetError};
use anubis_workload::{simulate_multi_node_training, simulate_training, ModelId, TrainingOptions};
use std::collections::BTreeMap;
use std::fmt;

/// Errors from benchmark execution.
#[derive(Debug, Clone, PartialEq)]
pub enum SuiteError {
    /// A multi-node benchmark was run through the single-node entry point
    /// (or vice versa).
    PhaseMismatch(BenchmarkId),
    /// A multi-node benchmark ran without a fabric.
    MissingFabric(BenchmarkId),
    /// The node set was empty.
    EmptyNodeSet,
    /// `members` and `nodes` disagreed in length.
    MemberMismatch {
        /// Number of nodes supplied.
        nodes: usize,
        /// Number of member indices supplied.
        members: usize,
    },
    /// Malformed measurements (should not happen with the simulator).
    Metrics(MetricsError),
    /// Topology error from the fabric.
    Net(NetError),
}

impl fmt::Display for SuiteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::PhaseMismatch(b) => write!(f, "benchmark `{b}` run in the wrong phase"),
            Self::MissingFabric(b) => write!(f, "benchmark `{b}` needs a network fabric"),
            Self::EmptyNodeSet => write!(f, "no nodes to validate"),
            Self::MemberMismatch { nodes, members } => {
                write!(f, "{nodes} nodes but {members} fabric members")
            }
            Self::Metrics(e) => write!(f, "measurement error: {e}"),
            Self::Net(e) => write!(f, "network error: {e}"),
        }
    }
}

impl std::error::Error for SuiteError {}

impl From<MetricsError> for SuiteError {
    fn from(e: MetricsError) -> Self {
        Self::Metrics(e)
    }
}

impl From<NetError> for SuiteError {
    fn from(e: NetError) -> Self {
        Self::Net(e)
    }
}

/// Results of running a benchmark (sub)set: per benchmark, one sample per
/// node.
#[derive(Debug, Clone, Default)]
pub struct RunData {
    /// Benchmark → `(node, sample)` pairs.
    pub results: BTreeMap<BenchmarkId, Vec<(NodeId, Sample)>>,
}

impl RunData {
    /// Merges another run's results into this one.
    pub fn merge(&mut self, other: RunData) {
        for (bench, mut rows) in other.results {
            self.results.entry(bench).or_default().append(&mut rows);
        }
    }

    /// Samples for one benchmark, if it was run.
    pub fn samples_for(&self, bench: BenchmarkId) -> Option<&[(NodeId, Sample)]> {
        self.results.get(&bench).map(Vec::as_slice)
    }

    /// All benchmarks present.
    pub fn benchmarks(&self) -> Vec<BenchmarkId> {
        self.results.keys().copied().collect()
    }

    /// Renders the results as JSON lines (one `{benchmark, node, values}`
    /// object per node×benchmark), the SuperBench-style results export.
    pub fn to_jsonl(&self) -> Result<String, anubis_metrics::json::JsonError> {
        let mut out = String::new();
        self.append_jsonl(&mut out)?;
        Ok(out)
    }

    /// Appends the JSONL export to a caller-owned (typically pooled)
    /// buffer. This is the allocation-free path: rows serialize through
    /// `anubis_metrics::json::to_json_into` straight into `out`, with no
    /// per-row scratch string (arena-clean under `cargo xtask analyze`
    /// pass A008).
    pub fn append_jsonl(&self, out: &mut String) -> Result<(), anubis_metrics::json::JsonError> {
        #[derive(serde::Serialize)]
        struct Row<'a> {
            benchmark: &'a str,
            node: u32,
            values: &'a [f64],
        }
        for (bench, rows) in &self.results {
            for (node, sample) in rows {
                let row = Row {
                    benchmark: bench.spec().name,
                    node: node.0,
                    values: sample.values(),
                };
                anubis_metrics::json::to_json_into(&row, out)?;
                out.push('\n');
            }
        }
        Ok(())
    }
}

/// Measurement repetitions for scalar micro-benchmarks.
const MICRO_REPS: usize = 32;
/// Recorded steps for end-to-end training benchmarks.
const E2E_STEPS: usize = 160;

fn repeat(node: &mut NodeSim, reps: usize, mut f: impl FnMut(&mut NodeSim) -> f64) -> Vec<f64> {
    (0..reps).map(|_| f(node)).collect()
}

/// Runs one **single-node** benchmark on a node.
///
/// # Examples
///
/// ```
/// use anubis_benchsuite::{run_benchmark, BenchmarkId};
/// use anubis_hwsim::{NodeId, NodeSim, NodeSpec};
///
/// let mut node = NodeSim::new(NodeId(0), NodeSpec::a100_8x(), 7);
/// let sample = run_benchmark(BenchmarkId::GpuGemmFp16, &mut node).unwrap();
/// assert!(sample.mean() > 250.0); // near A100 FP16 peak × efficiency
/// ```
pub fn run_benchmark(id: BenchmarkId, node: &mut NodeSim) -> Result<Sample, SuiteError> {
    if id.spec().phase != Phase::SingleNode {
        return Err(SuiteError::PhaseMismatch(id));
    }
    let values = match id {
        BenchmarkId::KernelLaunch => {
            repeat(node, 64, anubis_hwsim::NodeSim::measure_kernel_launch_us)
        }
        BenchmarkId::GpuGemmFp32 => repeat(node, MICRO_REPS, |n| {
            n.measure_gemm_tflops(Precision::Fp32, 8192)
        }),
        BenchmarkId::GpuGemmFp16 => repeat(node, MICRO_REPS, |n| {
            n.measure_gemm_tflops(Precision::Fp16, 8192)
        }),
        BenchmarkId::CublasKernels => {
            let mut values = Vec::with_capacity(24);
            for &size in &[1024usize, 2048, 4096] {
                values.extend(repeat(node, 8, |n| {
                    n.measure_gemm_tflops(Precision::Fp16, size)
                }));
            }
            values
        }
        BenchmarkId::CudnnKernels => {
            let mut values = Vec::with_capacity(24);
            for &size in &[512usize, 1024, 2048] {
                values.extend(repeat(node, 8, |n| {
                    n.measure_gemm_tflops(Precision::Fp16, size)
                }));
            }
            values
        }
        BenchmarkId::GpuBurn => repeat(node, MICRO_REPS, |n| {
            n.measure_gpu_burn_tflops(Precision::Fp16)
        }),
        BenchmarkId::CpuLatency => repeat(node, 64, anubis_hwsim::NodeSim::measure_cpu_latency_ns),
        BenchmarkId::GpuH2dBandwidth => {
            repeat(node, MICRO_REPS, anubis_hwsim::NodeSim::measure_h2d_gbps)
        }
        BenchmarkId::GpuD2hBandwidth => {
            repeat(node, MICRO_REPS, anubis_hwsim::NodeSim::measure_d2h_gbps)
        }
        BenchmarkId::GpuCopyBandwidth => repeat(
            node,
            MICRO_REPS,
            anubis_hwsim::NodeSim::measure_gpu_copy_gbps,
        ),
        BenchmarkId::NvlinkAllReduce => repeat(node, MICRO_REPS, |n| {
            n.measure_nvlink_allreduce_gbps(64 << 20)
        }),
        BenchmarkId::IbHcaLoopback => repeat(
            node,
            MICRO_REPS,
            anubis_hwsim::NodeSim::measure_hca_loopback_gbps,
        ),
        BenchmarkId::IbSingleNodeAllReduce => repeat(node, MICRO_REPS, |n| {
            n.measure_ib_single_node_allreduce_gbps()
        }),
        BenchmarkId::MatmulAllReduceOverlap => repeat(node, MICRO_REPS, |n| {
            n.measure_overlap_matmul_allreduce_tflops(Precision::Fp16)
        }),
        BenchmarkId::ShardingMatmul => repeat(node, MICRO_REPS, |n| {
            n.measure_sharding_matmul_tflops(Precision::Fp16)
        }),
        BenchmarkId::DiskSeqRead => repeat(node, 16, |n| n.measure_disk(DiskMode::SeqRead)),
        BenchmarkId::DiskSeqWrite => repeat(node, 16, |n| n.measure_disk(DiskMode::SeqWrite)),
        BenchmarkId::DiskRandRead => repeat(node, 16, |n| n.measure_disk(DiskMode::RandRead)),
        BenchmarkId::DiskRandWrite => repeat(node, 16, |n| n.measure_disk(DiskMode::RandWrite)),
        BenchmarkId::TrainResNet => train(node, ModelId::ResNet50, E2E_STEPS),
        BenchmarkId::TrainDenseNet => train(node, ModelId::DenseNet169, E2E_STEPS),
        BenchmarkId::TrainVgg => train(node, ModelId::Vgg16, E2E_STEPS),
        BenchmarkId::TrainLstm => train(node, ModelId::Lstm, E2E_STEPS),
        BenchmarkId::TrainBert => train(node, ModelId::BertLarge, E2E_STEPS),
        BenchmarkId::TrainGpt2 => train(node, ModelId::Gpt2Small, E2E_STEPS),
        BenchmarkId::GpuStress => train(node, ModelId::Gpt2Large, 2 * E2E_STEPS),
        BenchmarkId::AllPairRdma
        | BenchmarkId::MultiNodeAllReduce
        | BenchmarkId::MultiNodeAllGather
        | BenchmarkId::MultiNodeAllToAll
        | BenchmarkId::MultiNodeTraining => unreachable!("phase checked above"),
    };
    Ok(Sample::new(values)?)
}

/// Warmup steps an end-to-end validation run discards (the Appendix B
/// tuned windows always skip the JIT/autotune transient).
const E2E_WARMUP_TRIM: usize = 32;

fn train(node: &mut NodeSim, model: ModelId, steps: usize) -> Vec<f64> {
    let options = TrainingOptions::validation(steps + E2E_WARMUP_TRIM);
    let series = simulate_training(node, &model.config(), &options);
    series[E2E_WARMUP_TRIM..].to_vec()
}

/// Runs one **multi-node** benchmark over a node set and fabric, returning
/// one sample per node (parallel to `nodes`).
pub fn run_benchmark_multi(
    id: BenchmarkId,
    nodes: &mut [NodeSim],
    members: &[usize],
    fabric: &FatTree,
) -> Result<Vec<Sample>, SuiteError> {
    if id.spec().phase != Phase::MultiNode {
        return Err(SuiteError::PhaseMismatch(id));
    }
    if nodes.is_empty() {
        return Err(SuiteError::EmptyNodeSet);
    }
    if nodes.len() != members.len() {
        return Err(SuiteError::MemberMismatch {
            nodes: nodes.len(),
            members: members.len(),
        });
    }
    match id {
        BenchmarkId::AllPairRdma => {
            // Appendix A full scan: per node, collect its pairwise
            // bandwidth in each round.
            let mut per_node: Vec<Vec<f64>> = vec![Vec::new(); nodes.len()];
            for round in full_scan_rounds(nodes.len()) {
                let fabric_pairs: Vec<(usize, usize)> = round
                    .iter()
                    .map(|&(a, b)| (members[a], members[b]))
                    .collect();
                let bws = concurrent_pair_bandwidths(fabric, &fabric_pairs)?;
                for (&(a, b), bw) in round.iter().zip(&bws) {
                    for &idx in &[a, b] {
                        let nic = nodes[idx].impact().network_bandwidth;
                        let noisy = bw * nic * nodes[idx].draw_noise(NoiseModel::NETWORK);
                        per_node[idx].push(noisy);
                    }
                }
            }
            per_node
                .into_iter()
                .map(|v| Sample::new(v).map_err(SuiteError::from))
                .collect()
        }
        BenchmarkId::MultiNodeAllReduce | BenchmarkId::MultiNodeAllGather => {
            let base = ring_allreduce_busbw(fabric, members)?;
            let scale = if id == BenchmarkId::MultiNodeAllGather {
                0.98
            } else {
                1.0
            };
            collect_network_samples(nodes, base * scale)
        }
        BenchmarkId::MultiNodeAllToAll => {
            let bytes_per_pair = 16.0 * (1 << 20) as f64;
            let t = all_to_all_completion_s(fabric, members, bytes_per_pair)?;
            let per_node_gbps = if t.is_finite() && t > 0.0 {
                bytes_per_pair * (members.len() as f64 - 1.0) / t / 1e9
            } else {
                0.0
            };
            collect_network_samples(nodes, per_node_gbps)
        }
        BenchmarkId::MultiNodeTraining => {
            let series = simulate_multi_node_training(
                nodes,
                members,
                fabric,
                &ModelId::Gpt2Small.config(),
                &TrainingOptions::validation(96),
            );
            let sample = Sample::new(series)?;
            Ok(vec![sample; nodes.len()])
        }
        _ => unreachable!("phase checked above"),
    }
}

fn collect_network_samples(nodes: &mut [NodeSim], base: f64) -> Result<Vec<Sample>, SuiteError> {
    nodes
        .iter_mut()
        .map(|node| {
            let nic = node.impact().network_bandwidth;
            let values: Vec<f64> = (0..16)
                .map(|_| (base * nic * node.draw_noise(NoiseModel::NETWORK)).max(0.0))
                .collect();
            Sample::new(values).map_err(SuiteError::from)
        })
        .collect()
}

/// Runs a benchmark (sub)set over a node set in the paper's two-phase
/// order: single-node benchmarks per node, then multi-node benchmarks (if a
/// fabric is supplied).
///
/// `members[i]` is the fabric index of `nodes[i]`. Multi-node benchmarks in
/// `set` error with [`SuiteError::MissingFabric`] when `fabric` is `None`.
pub fn run_set(
    set: &[BenchmarkId],
    nodes: &mut [NodeSim],
    members: &[usize],
    fabric: Option<&FatTree>,
) -> Result<RunData, SuiteError> {
    if nodes.is_empty() {
        return Err(SuiteError::EmptyNodeSet);
    }
    if nodes.len() != members.len() {
        return Err(SuiteError::MemberMismatch {
            nodes: nodes.len(),
            members: members.len(),
        });
    }
    let mut data = RunData::default();
    // Phase 1: single-node benchmarks.
    for &bench in set.iter().filter(|b| b.spec().phase == Phase::SingleNode) {
        let _span = anubis_obs::span!(bench.spec().name);
        let mut rows = Vec::with_capacity(nodes.len());
        for node in nodes.iter_mut() {
            rows.push((node.id(), run_benchmark(bench, node)?));
        }
        anubis_obs::counter!("runner.node_runs", rows.len() as i64);
        data.results.insert(bench, rows);
    }
    // Phase 2: multi-node benchmarks.
    let multi: Vec<BenchmarkId> = set
        .iter()
        .copied()
        .filter(|b| b.spec().phase == Phase::MultiNode)
        .collect();
    if !multi.is_empty() {
        let fabric = match fabric {
            Some(f) => f,
            None => return Err(SuiteError::MissingFabric(multi[0])),
        };
        if nodes.len() >= 2 {
            for bench in multi {
                let _span = anubis_obs::span!(bench.spec().name);
                let samples = run_benchmark_multi(bench, nodes, members, fabric)?;
                let rows = nodes
                    .iter()
                    .zip(samples)
                    .map(|(n, s)| (n.id(), s))
                    .collect();
                data.results.insert(bench, rows);
            }
        }
    }
    Ok(data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use anubis_hwsim::{FaultKind, NodeSpec};
    use anubis_netsim::FatTreeConfig;

    fn node(id: u32, seed: u64) -> NodeSim {
        NodeSim::new(NodeId(id), NodeSpec::a100_8x(), seed)
    }

    #[test]
    fn every_single_node_benchmark_produces_a_sample() {
        let mut n = node(0, 1);
        for bench in BenchmarkId::single_node() {
            let sample = run_benchmark(bench, &mut n).unwrap();
            assert!(!sample.is_empty(), "{bench}");
            assert!(sample.min() >= 0.0, "{bench}");
        }
    }

    #[test]
    fn phase_mismatch_is_rejected() {
        let mut n = node(0, 1);
        assert_eq!(
            run_benchmark(BenchmarkId::AllPairRdma, &mut n),
            Err(SuiteError::PhaseMismatch(BenchmarkId::AllPairRdma))
        );
        let fabric = FatTree::build(FatTreeConfig::figure3_testbed()).unwrap();
        let mut nodes = vec![node(0, 1), node(1, 2)];
        assert!(matches!(
            run_benchmark_multi(BenchmarkId::GpuGemmFp16, &mut nodes, &[0, 1], &fabric),
            Err(SuiteError::PhaseMismatch(_))
        ));
    }

    #[test]
    fn defective_node_shows_in_the_right_benchmark() {
        let mut healthy = node(0, 5);
        let mut defective = node(1, 5);
        defective.inject_fault(FaultKind::HcaDegraded { severity: 0.4 });
        let h = run_benchmark(BenchmarkId::IbHcaLoopback, &mut healthy).unwrap();
        let d = run_benchmark(BenchmarkId::IbHcaLoopback, &mut defective).unwrap();
        assert!(d.mean() < h.mean() * 0.7);
        // GEMM is untouched.
        let hg = run_benchmark(BenchmarkId::GpuGemmFp16, &mut healthy).unwrap();
        let dg = run_benchmark(BenchmarkId::GpuGemmFp16, &mut defective).unwrap();
        assert!((hg.mean() - dg.mean()).abs() / hg.mean() < 0.02);
    }

    #[test]
    fn all_pair_rdma_gives_each_node_n_minus_1_values() {
        let fabric = FatTree::build(FatTreeConfig::figure3_testbed()).unwrap();
        let mut nodes: Vec<NodeSim> = (0..8).map(|i| node(i, 3)).collect();
        let members: Vec<usize> = (0..8).collect();
        let samples =
            run_benchmark_multi(BenchmarkId::AllPairRdma, &mut nodes, &members, &fabric).unwrap();
        assert_eq!(samples.len(), 8);
        for s in &samples {
            assert_eq!(s.len(), 7, "one pairing per round");
        }
    }

    #[test]
    fn multi_node_allreduce_flags_bad_nic() {
        let fabric = FatTree::build(FatTreeConfig::figure3_testbed()).unwrap();
        let mut nodes: Vec<NodeSim> = (0..4).map(|i| node(i, 9)).collect();
        nodes[2].inject_fault(FaultKind::IbLinkBer { severity: 0.5 });
        let members: Vec<usize> = (0..4).collect();
        let samples = run_benchmark_multi(
            BenchmarkId::MultiNodeAllReduce,
            &mut nodes,
            &members,
            &fabric,
        )
        .unwrap();
        assert!(samples[2].mean() < samples[0].mean() * 0.6);
    }

    #[test]
    fn run_set_two_phases() {
        let fabric = FatTree::build(FatTreeConfig::figure3_testbed()).unwrap();
        let mut nodes: Vec<NodeSim> = (0..4).map(|i| node(i, 11)).collect();
        let members: Vec<usize> = (0..4).collect();
        let set = [
            BenchmarkId::GpuGemmFp16,
            BenchmarkId::CpuLatency,
            BenchmarkId::MultiNodeAllReduce,
        ];
        let data = run_set(&set, &mut nodes, &members, Some(&fabric)).unwrap();
        assert_eq!(data.benchmarks().len(), 3);
        assert_eq!(data.samples_for(BenchmarkId::GpuGemmFp16).unwrap().len(), 4);
        assert_eq!(
            data.samples_for(BenchmarkId::MultiNodeAllReduce)
                .unwrap()
                .len(),
            4
        );
    }

    #[test]
    fn run_set_requires_fabric_for_multi_node() {
        let mut nodes: Vec<NodeSim> = (0..2).map(|i| node(i, 13)).collect();
        let err = run_set(&[BenchmarkId::MultiNodeAllToAll], &mut nodes, &[0, 1], None);
        assert!(matches!(err, Err(SuiteError::MissingFabric(_))));
    }

    #[test]
    fn run_set_validates_inputs() {
        let mut nodes: Vec<NodeSim> = vec![];
        assert!(matches!(
            run_set(&[BenchmarkId::GpuGemmFp16], &mut nodes, &[], None),
            Err(SuiteError::EmptyNodeSet)
        ));
        let mut nodes = vec![node(0, 1)];
        assert!(matches!(
            run_set(&[BenchmarkId::GpuGemmFp16], &mut nodes, &[0, 1], None),
            Err(SuiteError::MemberMismatch { .. })
        ));
    }

    #[test]
    fn jsonl_export_shape() {
        let mut data = RunData::default();
        data.results.insert(
            BenchmarkId::CpuLatency,
            vec![(NodeId(3), Sample::new(vec![95.0, 96.5]).unwrap())],
        );
        let jsonl = data.to_jsonl().unwrap();
        assert_eq!(
            jsonl.trim(),
            r#"{"benchmark":"CPU latency","node":3,"values":[95,96.5]}"#
        );
    }

    #[test]
    fn merge_accumulates_rows() {
        let mut a = RunData::default();
        let mut b = RunData::default();
        a.results.insert(
            BenchmarkId::CpuLatency,
            vec![(NodeId(0), Sample::scalar(95.0).unwrap())],
        );
        b.results.insert(
            BenchmarkId::CpuLatency,
            vec![(NodeId(1), Sample::scalar(96.0).unwrap())],
        );
        a.merge(b);
        assert_eq!(a.samples_for(BenchmarkId::CpuLatency).unwrap().len(), 2);
    }
}

//! Benchmark identifiers and static metadata.

use anubis_metrics::Direction;

/// Micro vs. end-to-end benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BenchCategory {
    /// Component-wise or pattern-wise micro-benchmark.
    Micro,
    /// End-to-end model training benchmark.
    EndToEnd,
}

/// Execution phase (Section 4: single-node first, then multi-node).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Runs independently on each node.
    SingleNode,
    /// Needs a set of nodes and the network fabric.
    MultiNode,
}

/// Static metadata of one benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchmarkSpec {
    /// Display name matching Table 2.
    pub name: &'static str,
    /// Micro or end-to-end.
    pub category: BenchCategory,
    /// Single-node or multi-node phase.
    pub phase: Phase,
    /// Whether larger measurements are better.
    pub direction: Direction,
    /// Metric unit for display.
    pub unit: &'static str,
    /// Nominal running time in minutes (the `t_i` of Algorithm 1).
    pub runtime_minutes: f64,
}

/// Every benchmark in the ANUBIS suite (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BenchmarkId {
    // --- Single-node micro: computation ---
    /// GPU kernel-launch latency.
    KernelLaunch,
    /// Large square GEMM, FP32.
    GpuGemmFp32,
    /// Large square GEMM, FP16 (tensor cores).
    GpuGemmFp16,
    /// cuBLAS kernel set with common shapes.
    CublasKernels,
    /// cuDNN kernel set with common shapes.
    CudnnKernels,
    /// Sustained GPU burn (thermal saturation).
    GpuBurn,
    // --- Single-node micro: communication ---
    /// Host memory latency.
    CpuLatency,
    /// Host→device copy bandwidth.
    GpuH2dBandwidth,
    /// Device→host copy bandwidth.
    GpuD2hBandwidth,
    /// On-device copy bandwidth.
    GpuCopyBandwidth,
    /// Intra-node all-reduce over NVLink/xGMI.
    NvlinkAllReduce,
    /// InfiniBand HCA loopback.
    IbHcaLoopback,
    /// Single-node all-reduce over the IB rail.
    IbSingleNodeAllReduce,
    // --- Single-node micro: computation/communication overlap ---
    /// GEMM concurrent with all-reduce (the Section 2.1 pattern).
    MatmulAllReduceOverlap,
    /// Sharded (tensor-parallel style) MatMul.
    ShardingMatmul,
    // --- Single-node micro: disk ---
    /// FIO sequential read.
    DiskSeqRead,
    /// FIO sequential write.
    DiskSeqWrite,
    /// FIO random read.
    DiskRandRead,
    /// FIO random write.
    DiskRandWrite,
    // --- Single-node end-to-end training ---
    /// ResNet-family training.
    TrainResNet,
    /// DenseNet-family training.
    TrainDenseNet,
    /// VGG-family training.
    TrainVgg,
    /// LSTM training.
    TrainLstm,
    /// BERT training.
    TrainBert,
    /// GPT-2 training.
    TrainGpt2,
    /// Long-running GPT-2 large stress.
    GpuStress,
    // --- Multi-node ---
    /// All-pair RDMA scan (Appendix A schedules).
    AllPairRdma,
    /// Multi-node all-reduce.
    MultiNodeAllReduce,
    /// Multi-node all-gather.
    MultiNodeAllGather,
    /// Multi-node all-to-all.
    MultiNodeAllToAll,
    /// Multi-node distributed training.
    MultiNodeTraining,
}

impl BenchmarkId {
    /// The full suite in Table 2 order.
    pub const ALL: [BenchmarkId; 31] = [
        BenchmarkId::KernelLaunch,
        BenchmarkId::GpuGemmFp32,
        BenchmarkId::GpuGemmFp16,
        BenchmarkId::CublasKernels,
        BenchmarkId::CudnnKernels,
        BenchmarkId::GpuBurn,
        BenchmarkId::CpuLatency,
        BenchmarkId::GpuH2dBandwidth,
        BenchmarkId::GpuD2hBandwidth,
        BenchmarkId::GpuCopyBandwidth,
        BenchmarkId::NvlinkAllReduce,
        BenchmarkId::IbHcaLoopback,
        BenchmarkId::IbSingleNodeAllReduce,
        BenchmarkId::MatmulAllReduceOverlap,
        BenchmarkId::ShardingMatmul,
        BenchmarkId::DiskSeqRead,
        BenchmarkId::DiskSeqWrite,
        BenchmarkId::DiskRandRead,
        BenchmarkId::DiskRandWrite,
        BenchmarkId::TrainResNet,
        BenchmarkId::TrainDenseNet,
        BenchmarkId::TrainVgg,
        BenchmarkId::TrainLstm,
        BenchmarkId::TrainBert,
        BenchmarkId::TrainGpt2,
        BenchmarkId::GpuStress,
        BenchmarkId::AllPairRdma,
        BenchmarkId::MultiNodeAllReduce,
        BenchmarkId::MultiNodeAllGather,
        BenchmarkId::MultiNodeAllToAll,
        BenchmarkId::MultiNodeTraining,
    ];

    /// All single-node benchmarks.
    pub fn single_node() -> Vec<BenchmarkId> {
        Self::ALL
            .iter()
            .copied()
            .filter(|b| b.spec().phase == Phase::SingleNode)
            .collect()
    }

    /// All multi-node benchmarks.
    pub fn multi_node() -> Vec<BenchmarkId> {
        Self::ALL
            .iter()
            .copied()
            .filter(|b| b.spec().phase == Phase::MultiNode)
            .collect()
    }

    /// Static metadata.
    pub fn spec(&self) -> BenchmarkSpec {
        use BenchCategory::{EndToEnd, Micro};
        use Direction::{HigherIsBetter, LowerIsBetter};
        use Phase::{MultiNode, SingleNode};
        let spec = |name, category, phase, direction, unit, runtime_minutes| BenchmarkSpec {
            name,
            category,
            phase,
            direction,
            unit,
            runtime_minutes,
        };
        match self {
            Self::KernelLaunch => spec(
                "GPU kernel launch",
                Micro,
                SingleNode,
                LowerIsBetter,
                "µs",
                2.0,
            ),
            Self::GpuGemmFp32 => spec(
                "GPU GEMM FP32",
                Micro,
                SingleNode,
                HigherIsBetter,
                "TFLOPS",
                3.0,
            ),
            Self::GpuGemmFp16 => spec(
                "GPU GEMM FP16",
                Micro,
                SingleNode,
                HigherIsBetter,
                "TFLOPS",
                3.0,
            ),
            Self::CublasKernels => spec(
                "cuBLAS kernels",
                Micro,
                SingleNode,
                HigherIsBetter,
                "TFLOPS",
                8.0,
            ),
            Self::CudnnKernels => spec(
                "cuDNN kernels",
                Micro,
                SingleNode,
                HigherIsBetter,
                "TFLOPS",
                8.0,
            ),
            Self::GpuBurn => spec(
                "GPU burn",
                Micro,
                SingleNode,
                HigherIsBetter,
                "TFLOPS",
                15.0,
            ),
            Self::CpuLatency => spec("CPU latency", Micro, SingleNode, LowerIsBetter, "ns", 3.0),
            Self::GpuH2dBandwidth => spec(
                "GPU H2D bandwidth",
                Micro,
                SingleNode,
                HigherIsBetter,
                "GB/s",
                2.0,
            ),
            Self::GpuD2hBandwidth => spec(
                "GPU D2H bandwidth",
                Micro,
                SingleNode,
                HigherIsBetter,
                "GB/s",
                2.0,
            ),
            Self::GpuCopyBandwidth => spec(
                "GPU copy bandwidth",
                Micro,
                SingleNode,
                HigherIsBetter,
                "GB/s",
                2.0,
            ),
            Self::NvlinkAllReduce => spec(
                "NVLink all-reduce",
                Micro,
                SingleNode,
                HigherIsBetter,
                "GB/s",
                5.0,
            ),
            Self::IbHcaLoopback => spec(
                "IB HCA loopback",
                Micro,
                SingleNode,
                HigherIsBetter,
                "Gb/s",
                4.0,
            ),
            Self::IbSingleNodeAllReduce => spec(
                "IB single-node all-reduce",
                Micro,
                SingleNode,
                HigherIsBetter,
                "GB/s",
                5.0,
            ),
            Self::MatmulAllReduceOverlap => spec(
                "MatMul/all-reduce overlap",
                Micro,
                SingleNode,
                HigherIsBetter,
                "TFLOPS",
                6.0,
            ),
            Self::ShardingMatmul => spec(
                "Sharding MatMul",
                Micro,
                SingleNode,
                HigherIsBetter,
                "TFLOPS",
                6.0,
            ),
            Self::DiskSeqRead => spec(
                "FIO seq read",
                Micro,
                SingleNode,
                HigherIsBetter,
                "MB/s",
                3.0,
            ),
            Self::DiskSeqWrite => spec(
                "FIO seq write",
                Micro,
                SingleNode,
                HigherIsBetter,
                "MB/s",
                3.0,
            ),
            Self::DiskRandRead => spec(
                "FIO rand read",
                Micro,
                SingleNode,
                HigherIsBetter,
                "kIOPS",
                3.0,
            ),
            Self::DiskRandWrite => spec(
                "FIO rand write",
                Micro,
                SingleNode,
                HigherIsBetter,
                "kIOPS",
                3.0,
            ),
            Self::TrainResNet => spec(
                "ResNet models",
                EndToEnd,
                SingleNode,
                HigherIsBetter,
                "samples/s",
                20.0,
            ),
            Self::TrainDenseNet => spec(
                "DenseNet models",
                EndToEnd,
                SingleNode,
                HigherIsBetter,
                "samples/s",
                18.0,
            ),
            Self::TrainVgg => spec(
                "VGG models",
                EndToEnd,
                SingleNode,
                HigherIsBetter,
                "samples/s",
                18.0,
            ),
            Self::TrainLstm => spec(
                "LSTM models",
                EndToEnd,
                SingleNode,
                HigherIsBetter,
                "samples/s",
                12.0,
            ),
            Self::TrainBert => spec(
                "BERT models",
                EndToEnd,
                SingleNode,
                HigherIsBetter,
                "samples/s",
                25.0,
            ),
            Self::TrainGpt2 => spec(
                "GPT-2 models",
                EndToEnd,
                SingleNode,
                HigherIsBetter,
                "samples/s",
                25.0,
            ),
            Self::GpuStress => spec(
                "Long-running stress (GPT-2 large)",
                EndToEnd,
                SingleNode,
                HigherIsBetter,
                "samples/s",
                45.0,
            ),
            Self::AllPairRdma => spec(
                "All-pair RDMA",
                Micro,
                MultiNode,
                HigherIsBetter,
                "GB/s",
                20.0,
            ),
            Self::MultiNodeAllReduce => spec(
                "Multi-node all-reduce",
                Micro,
                MultiNode,
                HigherIsBetter,
                "GB/s",
                10.0,
            ),
            Self::MultiNodeAllGather => spec(
                "Multi-node all-gather",
                Micro,
                MultiNode,
                HigherIsBetter,
                "GB/s",
                10.0,
            ),
            Self::MultiNodeAllToAll => spec(
                "Multi-node all-to-all",
                Micro,
                MultiNode,
                HigherIsBetter,
                "GB/s",
                12.0,
            ),
            Self::MultiNodeTraining => spec(
                "Multi-node training",
                EndToEnd,
                MultiNode,
                HigherIsBetter,
                "samples/s",
                30.0,
            ),
        }
    }

    /// Total runtime in minutes of a benchmark subset (Algorithm 1 cost).
    pub fn total_runtime_minutes(set: &[BenchmarkId]) -> f64 {
        set.iter().map(|b| b.spec().runtime_minutes).sum()
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.spec().name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_covers_table2() {
        assert_eq!(BenchmarkId::ALL.len(), 31);
        let single = BenchmarkId::single_node();
        let multi = BenchmarkId::multi_node();
        assert_eq!(single.len() + multi.len(), 31);
        assert_eq!(multi.len(), 5);
    }

    #[test]
    fn latency_benchmarks_are_lower_is_better() {
        assert_eq!(
            BenchmarkId::KernelLaunch.spec().direction,
            Direction::LowerIsBetter
        );
        assert_eq!(
            BenchmarkId::CpuLatency.spec().direction,
            Direction::LowerIsBetter
        );
        assert_eq!(
            BenchmarkId::GpuGemmFp16.spec().direction,
            Direction::HigherIsBetter
        );
    }

    #[test]
    fn runtimes_are_positive_and_e2e_is_slower() {
        for b in BenchmarkId::ALL {
            assert!(b.spec().runtime_minutes > 0.0, "{b}");
        }
        let micro_max = BenchmarkId::ALL
            .iter()
            .filter(|b| {
                b.spec().category == BenchCategory::Micro && b.spec().phase == Phase::SingleNode
            })
            .map(|b| b.spec().runtime_minutes)
            .fold(0.0f64, f64::max);
        let e2e_min = BenchmarkId::ALL
            .iter()
            .filter(|b| b.spec().category == BenchCategory::EndToEnd)
            .map(|b| b.spec().runtime_minutes)
            .fold(f64::INFINITY, f64::min);
        assert!(
            e2e_min >= micro_max * 0.75,
            "e2e benchmarks dominate runtime"
        );
    }

    #[test]
    fn full_set_runtime_matches_magnitude() {
        let total = BenchmarkId::total_runtime_minutes(&BenchmarkId::ALL);
        // Full validation takes a few hours (the paper's quick-but-frequent
        // philosophy needs subsets, not the full set).
        assert!(total > 240.0 && total < 600.0, "total {total} minutes");
    }

    #[test]
    fn display_uses_table2_names() {
        assert_eq!(BenchmarkId::IbHcaLoopback.to_string(), "IB HCA loopback");
        assert_eq!(BenchmarkId::TrainGpt2.to_string(), "GPT-2 models");
    }
}

//! Node-parallel benchmark execution.
//!
//! Validation runs the same benchmark on every node simultaneously in
//! production (the nodes are independent machines); this module gives the
//! simulator the same shape by fanning single-node benchmarks out across
//! worker threads via the shared deterministic executor
//! ([`anubis_parallel`]).

use crate::id::{BenchmarkId, Phase};
use crate::runner::{run_benchmark, RunData, SuiteError};
use anubis_hwsim::NodeSim;

/// Nodes per executor chunk: small enough to balance uneven per-node
/// simulation cost, fixed so the decomposition never depends on the
/// thread count.
const NODES_PER_CHUNK: usize = 4;

/// Runs a set of **single-node** benchmarks over all nodes, parallelizing
/// across nodes.
///
/// Semantically identical to iterating [`run_benchmark`] (each node owns
/// its RNG, so results match the sequential runner exactly); only
/// wall-clock time changes. Multi-node benchmarks in `set` are rejected —
/// they need the shared fabric and belong to the sequential phase-2 path.
///
/// `threads` caps the worker count (`0` = auto, see
/// [`anubis_parallel::auto_threads`]).
pub fn run_set_parallel(
    set: &[BenchmarkId],
    nodes: &mut [NodeSim],
    threads: usize,
) -> Result<RunData, SuiteError> {
    if nodes.is_empty() {
        return Err(SuiteError::EmptyNodeSet);
    }
    if set.is_empty() {
        return Ok(RunData::default());
    }
    if let Some(&bad) = set.iter().find(|b| b.spec().phase != Phase::SingleNode) {
        return Err(SuiteError::PhaseMismatch(bad));
    }
    // Orchestration-level span only: the per-node work below runs through
    // the executor, where recording is suppressed at any thread count.
    let _span = anubis_obs::span!("runner.run_set_parallel");
    anubis_obs::counter!(
        "runner.parallel_node_runs",
        (nodes.len() * set.len()) as i64
    );
    // Each worker owns a disjoint node chunk and returns one flat
    // node-major row buffer (node 0's full set, then node 1's, …): a
    // single allocation per chunk instead of one per node. Per-chunk
    // results come back in chunk order, so assembly below is in fleet
    // order without sorting.
    type ChunkResult = Result<Vec<(BenchmarkId, anubis_metrics::Sample)>, SuiteError>;
    let per_chunk: Vec<ChunkResult> =
        anubis_parallel::map_chunks_mut(nodes, NODES_PER_CHUNK, threads, |_, chunk| {
            let mut rows = Vec::with_capacity(chunk.len() * set.len());
            for node in chunk.iter_mut() {
                for &bench in set {
                    rows.push((bench, run_benchmark(bench, node)?));
                }
            }
            Ok(rows)
        });

    let mut data = RunData::default();
    let mut index = 0usize;
    for chunk in per_chunk {
        let rows = chunk?;
        let chunk_nodes = rows.len() / set.len();
        for (i, (bench, sample)) in rows.into_iter().enumerate() {
            let id = nodes[index + i / set.len()].id();
            data.results.entry(bench).or_default().push((id, sample));
        }
        index += chunk_nodes;
    }
    Ok(data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_set;
    use anubis_hwsim::{NodeId, NodeSpec};

    fn fleet(n: u32) -> Vec<NodeSim> {
        (0..n)
            .map(|i| NodeSim::new(NodeId(i), NodeSpec::a100_8x(), 33))
            .collect()
    }

    #[test]
    fn parallel_matches_sequential_exactly() {
        let set = [
            BenchmarkId::GpuGemmFp16,
            BenchmarkId::CpuLatency,
            BenchmarkId::DiskSeqRead,
        ];
        let members: Vec<usize> = (0..12).collect();
        let mut sequential_nodes = fleet(12);
        let sequential = run_set(&set, &mut sequential_nodes, &members, None).unwrap();
        let mut parallel_nodes = fleet(12);
        let parallel = run_set_parallel(&set, &mut parallel_nodes, 4).unwrap();
        for bench in set {
            let a = sequential.samples_for(bench).unwrap();
            let b = parallel.samples_for(bench).unwrap();
            assert_eq!(a.len(), b.len());
            for ((id_a, s_a), (id_b, s_b)) in a.iter().zip(b) {
                assert_eq!(id_a, id_b);
                assert_eq!(s_a.values(), s_b.values(), "{bench}: node {id_a} diverged");
            }
        }
    }

    #[test]
    fn thread_counts_agree_bitwise() {
        let set = [BenchmarkId::GpuGemmFp16, BenchmarkId::GpuCopyBandwidth];
        let mut reference_nodes = fleet(9);
        let reference = run_set_parallel(&set, &mut reference_nodes, 1).unwrap();
        for threads in [2usize, 8] {
            let mut nodes = fleet(9);
            let data = run_set_parallel(&set, &mut nodes, threads).unwrap();
            for bench in set {
                let a = reference.samples_for(bench).unwrap();
                let b = data.samples_for(bench).unwrap();
                assert_eq!(a, b, "{bench} diverged at {threads} threads");
            }
        }
    }

    #[test]
    fn rejects_multi_node_benchmarks() {
        let mut nodes = fleet(2);
        let err = run_set_parallel(&[BenchmarkId::AllPairRdma], &mut nodes, 2);
        assert!(matches!(
            err,
            Err(SuiteError::PhaseMismatch(BenchmarkId::AllPairRdma))
        ));
    }

    #[test]
    fn rejects_empty_fleet() {
        let mut nodes: Vec<NodeSim> = Vec::new();
        assert!(matches!(
            run_set_parallel(&[BenchmarkId::CpuLatency], &mut nodes, 2),
            Err(SuiteError::EmptyNodeSet)
        ));
    }

    #[test]
    fn worker_count_edge_cases() {
        let set = [BenchmarkId::CpuLatency];
        for threads in [0usize, 1, 3, 100] {
            let mut nodes = fleet(5);
            let data = run_set_parallel(&set, &mut nodes, threads).unwrap();
            assert_eq!(data.samples_for(BenchmarkId::CpuLatency).unwrap().len(), 5);
        }
    }
}

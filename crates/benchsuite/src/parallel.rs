//! Node-parallel benchmark execution.
//!
//! Validation runs the same benchmark on every node simultaneously in
//! production (the nodes are independent machines); this module gives the
//! simulator the same shape by fanning single-node benchmarks out across
//! OS threads with [`std::thread::scope`] and collecting results under a
//! [`std::sync::Mutex`].

use crate::id::{BenchmarkId, Phase};
use crate::runner::{run_benchmark, RunData, SuiteError};
use anubis_hwsim::NodeSim;
use std::sync::Mutex;

/// Per-node benchmark rows collected by a worker, keyed by fleet index.
type NodeRows = (usize, Vec<(BenchmarkId, anubis_metrics::Sample)>);

/// Locks a mutex, recovering the data if a worker panicked while holding
/// it. Partial rows from a panicked worker are harmless: the scope
/// re-raises the panic after all workers finish, so the data is never
/// returned to the caller.
fn lock_recover<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Runs a set of **single-node** benchmarks over all nodes, parallelizing
/// across nodes.
///
/// Semantically identical to iterating [`run_benchmark`] (each node owns
/// its RNG, so results match the sequential runner exactly); only
/// wall-clock time changes. Multi-node benchmarks in `set` are rejected —
/// they need the shared fabric and belong to the sequential phase-2 path.
///
/// `threads` caps the worker count (0 = one thread per node, up to 16).
pub fn run_set_parallel(
    set: &[BenchmarkId],
    nodes: &mut [NodeSim],
    threads: usize,
) -> Result<RunData, SuiteError> {
    if nodes.is_empty() {
        return Err(SuiteError::EmptyNodeSet);
    }
    if let Some(&bad) = set.iter().find(|b| b.spec().phase != Phase::SingleNode) {
        return Err(SuiteError::PhaseMismatch(bad));
    }
    let workers = if threads == 0 {
        nodes.len().min(16)
    } else {
        threads.min(nodes.len())
    };
    let results: Mutex<Vec<NodeRows>> = Mutex::new(Vec::with_capacity(nodes.len()));
    let errors: Mutex<Vec<SuiteError>> = Mutex::new(Vec::new());

    // Hand each worker a disjoint chunk of nodes. The scope joins every
    // worker before returning and re-raises any worker panic.
    let chunk_size = nodes.len().div_ceil(workers);
    std::thread::scope(|scope| {
        for (chunk_idx, chunk) in nodes.chunks_mut(chunk_size).enumerate() {
            let results = &results;
            let errors = &errors;
            scope.spawn(move || {
                for (offset, node) in chunk.iter_mut().enumerate() {
                    let mut rows = Vec::with_capacity(set.len());
                    for &bench in set {
                        match run_benchmark(bench, node) {
                            Ok(sample) => rows.push((bench, sample)),
                            Err(e) => {
                                lock_recover(errors).push(e);
                                return;
                            }
                        }
                    }
                    lock_recover(results).push((chunk_idx * chunk_size + offset, rows));
                }
            });
        }
    });

    if let Some(error) = lock_recover(&errors).drain(..).next() {
        return Err(error);
    }
    // Assemble in deterministic node order.
    let mut collected = std::mem::take(&mut *lock_recover(&results));
    collected.sort_by_key(|(idx, _)| *idx);
    let mut data = RunData::default();
    for (idx, rows) in collected {
        let id = nodes[idx].id();
        for (bench, sample) in rows {
            data.results.entry(bench).or_default().push((id, sample));
        }
    }
    Ok(data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_set;
    use anubis_hwsim::{NodeId, NodeSpec};

    fn fleet(n: u32) -> Vec<NodeSim> {
        (0..n)
            .map(|i| NodeSim::new(NodeId(i), NodeSpec::a100_8x(), 33))
            .collect()
    }

    #[test]
    fn parallel_matches_sequential_exactly() {
        let set = [
            BenchmarkId::GpuGemmFp16,
            BenchmarkId::CpuLatency,
            BenchmarkId::DiskSeqRead,
        ];
        let members: Vec<usize> = (0..12).collect();
        let mut sequential_nodes = fleet(12);
        let sequential = run_set(&set, &mut sequential_nodes, &members, None).unwrap();
        let mut parallel_nodes = fleet(12);
        let parallel = run_set_parallel(&set, &mut parallel_nodes, 4).unwrap();
        for bench in set {
            let a = sequential.samples_for(bench).unwrap();
            let b = parallel.samples_for(bench).unwrap();
            assert_eq!(a.len(), b.len());
            for ((id_a, s_a), (id_b, s_b)) in a.iter().zip(b) {
                assert_eq!(id_a, id_b);
                assert_eq!(s_a.values(), s_b.values(), "{bench}: node {id_a} diverged");
            }
        }
    }

    #[test]
    fn rejects_multi_node_benchmarks() {
        let mut nodes = fleet(2);
        let err = run_set_parallel(&[BenchmarkId::AllPairRdma], &mut nodes, 2);
        assert!(matches!(
            err,
            Err(SuiteError::PhaseMismatch(BenchmarkId::AllPairRdma))
        ));
    }

    #[test]
    fn rejects_empty_fleet() {
        let mut nodes: Vec<NodeSim> = Vec::new();
        assert!(matches!(
            run_set_parallel(&[BenchmarkId::CpuLatency], &mut nodes, 2),
            Err(SuiteError::EmptyNodeSet)
        ));
    }

    #[test]
    fn worker_count_edge_cases() {
        let set = [BenchmarkId::CpuLatency];
        for threads in [0usize, 1, 3, 100] {
            let mut nodes = fleet(5);
            let data = run_set_parallel(&set, &mut nodes, threads).unwrap();
            assert_eq!(data.samples_for(BenchmarkId::CpuLatency).unwrap().len(), 5);
        }
    }
}

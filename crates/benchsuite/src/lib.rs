//! The ANUBIS benchmark suite (paper Table 2).
//!
//! The suite mirrors the open-source SuperBench benchmark set: single-node
//! micro-benchmarks (computation, communication, overlap, disk), end-to-end
//! training benchmarks over the model zoo, and multi-node networking /
//! training benchmarks. Each benchmark runs against the simulated hardware
//! ([`anubis_hwsim::NodeSim`] plus [`anubis_netsim::FatTree`] for the
//! multi-node phase) and yields a [`anubis_metrics::Sample`] per node — a
//! single-value sample for scalar micro-benchmarks or a step series for
//! training benchmarks.
//!
//! [`BenchmarkId`] enumerates the suite; [`runner`] executes (sub)sets in
//! the paper's two-phase order.

// Panic-freedom: this crate runs in the fleet-facing validation path.
// The xtask lint enforces the same invariant lexically; this makes the
// compiler enforce it too (tests may unwrap freely).
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod id;
pub mod parallel;
pub mod runner;
pub mod sweep;

pub use id::{BenchCategory, BenchmarkId, BenchmarkSpec, Phase};
pub use parallel::run_set_parallel;
pub use runner::{run_benchmark, run_benchmark_multi, run_set, RunData, SuiteError};
pub use sweep::{default_size_grid, sweep_nvlink_allreduce, SweepResult};

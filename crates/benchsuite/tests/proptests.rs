//! Property-based tests over the benchmark suite.

use anubis_benchsuite::{run_benchmark, BenchmarkId, Phase};
use anubis_hwsim::{FaultKind, NodeId, NodeSim, NodeSpec};
use anubis_metrics::Direction;
use proptest::prelude::*;

fn single_node_bench() -> impl Strategy<Value = BenchmarkId> {
    prop::sample::select(BenchmarkId::single_node())
}

/// The benchmark expected to respond to a compute fault, per direction.
fn respond_pair() -> impl Strategy<Value = (FaultKind, BenchmarkId)> {
    prop_oneof![
        (0.2f64..0.6).prop_map(|s| (
            FaultKind::GpuComputeDegraded { severity: s },
            BenchmarkId::GpuGemmFp16
        )),
        (0.2f64..0.6).prop_map(|s| (
            FaultKind::PcieDowngrade { severity: s },
            BenchmarkId::GpuH2dBandwidth
        )),
        (0.2f64..0.6).prop_map(|s| (
            FaultKind::HcaDegraded { severity: s },
            BenchmarkId::IbHcaLoopback
        )),
        (0.2f64..0.6).prop_map(|s| (
            FaultKind::DiskSlow { severity: s },
            BenchmarkId::DiskSeqRead
        )),
        (0.2f64..0.6).prop_map(|s| (
            FaultKind::CpuMemoryLatency { severity: s },
            BenchmarkId::CpuLatency
        )),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any single-node benchmark on any seed yields a non-empty,
    /// well-formed sample.
    #[test]
    fn benchmarks_always_produce_samples(bench in single_node_bench(), seed in 0u64..300) {
        let mut node = NodeSim::new(NodeId(0), NodeSpec::a100_8x(), seed);
        let sample = run_benchmark(bench, &mut node).unwrap();
        prop_assert!(!sample.is_empty());
        prop_assert!(sample.min() >= 0.0);
        prop_assert!(sample.max().is_finite());
    }

    /// A responding benchmark moves in the defect's direction: throughput
    /// metrics drop, latency metrics rise — for any severity ≥ 20% and any
    /// seed.
    #[test]
    fn faults_move_their_benchmark_the_right_way(
        (fault, bench) in respond_pair(),
        seed in 0u64..300,
    ) {
        let mut healthy = NodeSim::new(NodeId(0), NodeSpec::a100_8x(), seed);
        let mut defective = NodeSim::new(NodeId(0), NodeSpec::a100_8x(), seed);
        defective.inject_fault(fault);
        let h = run_benchmark(bench, &mut healthy).unwrap();
        let d = run_benchmark(bench, &mut defective).unwrap();
        match bench.spec().direction {
            Direction::HigherIsBetter => {
                prop_assert!(d.mean() < h.mean() * 0.9, "{bench}: {} vs {}", d.mean(), h.mean());
            }
            Direction::LowerIsBetter => {
                prop_assert!(d.mean() > h.mean() * 1.1, "{bench}: {} vs {}", d.mean(), h.mean());
            }
        }
    }

    /// Every suite member has a consistent spec: positive runtime, a unit
    /// string, and phase-consistent execution behaviour.
    #[test]
    fn specs_are_internally_consistent(idx in 0usize..31) {
        let bench = BenchmarkId::ALL[idx];
        let spec = bench.spec();
        prop_assert!(spec.runtime_minutes > 0.0);
        prop_assert!(!spec.unit.is_empty());
        prop_assert!(!spec.name.is_empty());
        let mut node = NodeSim::new(NodeId(0), NodeSpec::a100_8x(), 1);
        let outcome = run_benchmark(bench, &mut node);
        match spec.phase {
            Phase::SingleNode => prop_assert!(outcome.is_ok()),
            Phase::MultiNode => prop_assert!(outcome.is_err()),
        }
    }
}

//! Manual timing probe for the MLP hot paths (ignored by default; run
//! with `cargo test -p anubis-nn --release -- --ignored --nocapture`).

use anubis_nn::{Activation, BackwardScratch, Mlp};
use std::time::Instant;

#[test]
#[ignore = "manual timing probe"]
fn time_forward_backward() {
    let mlp = Mlp::new(&[11, 64, 64, 1], Activation::Tanh, 7);
    let input: Vec<f64> = (0..11).map(|i| 0.1 * i as f64 - 0.5).collect();
    let mut cache = mlp.empty_cache();

    let n = 200_000u32;
    let start = Instant::now();
    let mut sink = 0.0f64;
    for _ in 0..n {
        sink += mlp.forward_scalar_into(&input, &mut cache);
    }
    let fwd = start.elapsed();
    println!(
        "forward:  {:.2} us/call (sink {sink})",
        fwd.as_secs_f64() * 1e6 / f64::from(n)
    );

    let mut flat = vec![0.0f64; mlp.parameter_count()];
    let mut scratch = BackwardScratch::default();
    mlp.forward_into(&input, &mut cache);
    let start = Instant::now();
    for _ in 0..n {
        mlp.backward_flat(&cache, &[1.0], &mut flat, &mut scratch);
    }
    let bwd = start.elapsed();
    println!(
        "backward: {:.2} us/call (flat[0] {})",
        bwd.as_secs_f64() * 1e6 / f64::from(n),
        flat[0]
    );

    let start = Instant::now();
    let mut t = 0.0f64;
    for i in 0..10_000_000u32 {
        t += (f64::from(i) * 1e-6).tanh();
    }
    println!(
        "tanh:     {:.1} ns/call (sink {t})",
        start.elapsed().as_secs_f64() * 1e9 / 1e7
    );
}

//! Differential verification that `fastmath::tanh` is bit-identical to
//! the system libm's `tanh` (fdlibm on glibc x86-64): dense log-uniform
//! sampling across every branch of the algorithm, plus ulp sweeps around
//! each branch boundary. A single mismatching bit anywhere fails loudly.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn assert_matches(x: f64) {
    let ours = anubis_nn::fastmath::tanh(x);
    let libm = x.tanh();
    assert_eq!(
        ours.to_bits(),
        libm.to_bits(),
        "tanh({x:e}) [bits {:#018x}]: ours {ours:e} != libm {libm:e}",
        x.to_bits(),
    );
    // The batched kernel must agree too: a full four-lane chunk plus a
    // remainder lane exercises both the branchless body (or its scalar
    // fallback) and the tail path.
    let mut buf = [x; 5];
    anubis_nn::fastmath::tanh_slice(&mut buf);
    for (i, v) in buf.iter().enumerate() {
        assert_eq!(v.to_bits(), libm.to_bits(), "tanh_slice lane {i} for {x:e}");
    }
}

#[test]
fn mixed_domain_chunks_match() {
    // Chunks mixing in-domain values with tiny/saturated/non-finite ones
    // must take the scalar fallback without disturbing neighbours.
    let specials = [0.0, -0.0, 1e-300, 25.0, -40.0, f64::INFINITY, 1e18];
    for (i, &s) in specials.iter().enumerate() {
        let mut buf = [0.3, -1.7, s, 0.9, 18.99, -0.001, 2.5, 1.0, -1.0];
        let len = buf.len();
        buf.rotate_left(i % len);
        let expected: Vec<u64> = buf.iter().map(|v| v.tanh().to_bits()).collect();
        anubis_nn::fastmath::tanh_slice(&mut buf);
        for (lane, (v, want)) in buf.iter().zip(&expected).enumerate() {
            assert_eq!(v.to_bits(), *want, "lane {lane} with special {s:e}");
        }
    }
}

#[test]
fn special_values_match() {
    for x in [
        0.0,
        -0.0,
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::MIN_POSITIVE,
        -f64::MIN_POSITIVE,
        5e-324, // smallest subnormal
        f64::MAX,
        f64::MIN,
    ] {
        assert_matches(x);
    }
    assert!(anubis_nn::fastmath::tanh(f64::NAN).is_nan());
}

#[test]
fn branch_boundaries_match_to_the_ulp() {
    // tanh's own branch cuts, and the points where its expm1 argument
    // (±2|x|) crosses expm1's reduction thresholds (2⁻⁵⁴, 0.5 ln 2,
    // 1.5 ln 2, 56 ln 2) or lands on an integer-k boundary.
    let ln2 = std::f64::consts::LN_2;
    let mut anchors = vec![
        f64::from_bits(0x3c80_0000_0000_0000), // 2⁻⁵⁵
        f64::from_bits(0x3c90_0000_0000_0000) / 2.0,
        0.25 * ln2,
        0.75 * ln2,
        1.0,
        22.0,
        19.0, // 2|x| near the k > 56 cut
        0.25,
        0.125,
    ];
    for k in 1..64 {
        anchors.push(0.5 * ln2 * f64::from(k)); // 2|x| = k ln 2
    }
    for anchor in anchors {
        for sign in [1.0, -1.0] {
            let mut lo = sign * anchor;
            let mut hi = lo;
            for _ in 0..64 {
                assert_matches(lo);
                assert_matches(hi);
                lo = lo.next_down();
                hi = hi.next_up();
            }
        }
    }
}

#[test]
fn dense_log_uniform_sweep_matches() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x7a11);
    // Log-uniform magnitudes from deep subnormal to past every cutoff:
    // exercises the tiny path, both expm1 halves, every reduction branch
    // and the saturated tail.
    for _ in 0..2_000_000 {
        let exponent: f64 = rng.random_range(-60.0..6.0);
        let mantissa: f64 = rng.random_range(1.0..2.0);
        let sign = if rng.random_range(0..2) == 0 {
            1.0
        } else {
            -1.0
        };
        assert_matches(sign * mantissa * exponent.exp2());
    }
    // Uniform sweep over the realistic pre-activation range.
    for _ in 0..2_000_000 {
        assert_matches(rng.random_range(-25.0..25.0));
    }
}

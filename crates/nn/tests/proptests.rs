//! Property-based tests for the neural-network substrate.

use anubis_nn::{Activation, Adam, Mlp, StandardScaler};
use proptest::prelude::*;

fn architecture() -> impl Strategy<Value = Vec<usize>> {
    (1usize..4, 1usize..12, 1usize..3)
        .prop_map(|(input, hidden, output)| vec![input, hidden, output])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Analytic gradients match finite differences on random
    /// architectures, activations, inputs and seeds.
    #[test]
    fn gradients_match_finite_differences(
        sizes in architecture(),
        tanh in any::<bool>(),
        seed in 0u64..200,
        x in prop::collection::vec(-2.0f64..2.0, 3),
    ) {
        let activation = if tanh { Activation::Tanh } else { Activation::Relu };
        let mlp = Mlp::new(&sizes, activation, seed);
        let input = &x[..sizes[0]];
        // Loss: 0.5 * Σ y².
        let loss = |net: &Mlp| -> f64 {
            net.forward(input).iter().map(|y| 0.5 * y * y).sum()
        };
        let cache = mlp.forward_cached(input);
        let output_grad: Vec<f64> = cache.output().to_vec();
        let mut grads = mlp.zero_gradients();
        mlp.backward(&cache, &output_grad, &mut grads);
        let analytic: Vec<f64> = Mlp::flattened_gradients(&grads);

        let eps = 1e-6;
        for (p, &analytic_grad) in analytic.iter().enumerate().take(mlp.parameter_count()) {
            let mut plus = mlp.clone();
            plus.perturb_parameter(p, eps);
            let mut minus = mlp.clone();
            minus.perturb_parameter(p, -eps);
            let numeric = (loss(&plus) - loss(&minus)) / (2.0 * eps);
            // ReLU kinks make finite differences locally inexact; allow a
            // loose bound there and a tight one for tanh.
            let tolerance: f64 = if tanh { 1e-4 } else { 2e-3 };
            prop_assert!(
                (analytic_grad - numeric).abs() <= tolerance.max(numeric.abs() * 1e-3),
                "param {p}: analytic {analytic_grad} vs numeric {numeric}"
            );
        }
    }

    /// Training with Adam on a constant target always reduces the loss.
    #[test]
    fn adam_reduces_constant_target_loss(seed in 0u64..100, target in -3.0f64..3.0) {
        let mut mlp = Mlp::new(&[1, 8, 1], Activation::Tanh, seed);
        let mut adam = Adam::new(&mlp, 1e-2);
        let loss = |net: &Mlp| {
            let y = net.forward_scalar(&[0.5]);
            0.5 * (y - target) * (y - target)
        };
        let initial = loss(&mlp);
        for _ in 0..200 {
            let cache = mlp.forward_cached(&[0.5]);
            let err = cache.output()[0] - target;
            let mut grads = mlp.zero_gradients();
            mlp.backward(&cache, &[err], &mut grads);
            adam.step(&mut mlp, &grads);
        }
        prop_assert!(loss(&mlp) <= initial.max(1e-8), "{} -> {}", initial, loss(&mlp));
        prop_assert!(loss(&mlp) < 0.05, "converges near the target: {}", loss(&mlp));
    }

    /// Scaler round-trip: transformed features have near-zero mean and
    /// near-unit variance for arbitrary data.
    #[test]
    fn scaler_standardizes(rows in prop::collection::vec(
        prop::collection::vec(-1000.0f64..1000.0, 3), 4..40))
    {
        let scaler = StandardScaler::fit(&rows);
        let transformed = scaler.transform_all(&rows);
        for d in 0..3 {
            let n = transformed.len() as f64;
            let mean: f64 = transformed.iter().map(|r| r[d]).sum::<f64>() / n;
            prop_assert!(mean.abs() < 1e-6, "dim {d} mean {mean}");
            let var: f64 = transformed.iter().map(|r| r[d] * r[d]).sum::<f64>() / n;
            // Constant columns standardize to zero (variance 0), others
            // to 1.
            prop_assert!(var < 1.0 + 1e-6, "dim {d} var {var}");
        }
    }
}

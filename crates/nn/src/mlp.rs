//! Multilayer perceptron with manual backpropagation.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Activation function applied element-wise after a dense layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Identity (used on output layers).
    Identity,
    /// Hyperbolic tangent.
    Tanh,
    /// Rectified linear unit.
    Relu,
}

impl Activation {
    fn apply(self, x: f64) -> f64 {
        match self {
            Self::Identity => x,
            Self::Tanh => x.tanh(),
            Self::Relu => x.max(0.0),
        }
    }

    /// Derivative expressed through the *activated* value `y = f(x)`, which
    /// is what the backward pass has cached.
    fn derivative_from_output(self, y: f64) -> f64 {
        match self {
            Self::Identity => 1.0,
            Self::Tanh => 1.0 - y * y,
            Self::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }
}

/// One dense layer: `y = f(W x + b)` with `W` stored row-major
/// (`outputs × inputs`).
#[derive(Debug, Clone)]
struct Layer {
    weights: Vec<f64>,
    biases: Vec<f64>,
    inputs: usize,
    outputs: usize,
    activation: Activation,
}

impl Layer {
    fn forward(&self, input: &[f64], output: &mut Vec<f64>) {
        output.clear();
        for o in 0..self.outputs {
            let row = &self.weights[o * self.inputs..(o + 1) * self.inputs];
            let z: f64 = row.iter().zip(input).map(|(w, x)| w * x).sum::<f64>() + self.biases[o];
            output.push(self.activation.apply(z));
        }
    }
}

/// Parameter-shaped gradient accumulator for an [`Mlp`].
///
/// Obtained from [`Mlp::zero_gradients`]; filled by [`Mlp::backward`] (which
/// *adds* into it, so several backward passes accumulate naturally) and
/// consumed by [`crate::Adam::step`].
#[derive(Debug, Clone)]
pub struct Gradients {
    pub(crate) weights: Vec<Vec<f64>>,
    pub(crate) biases: Vec<Vec<f64>>,
}

impl Gradients {
    /// Resets all accumulated gradients to zero.
    pub fn reset(&mut self) {
        for layer in &mut self.weights {
            layer.fill(0.0);
        }
        for layer in &mut self.biases {
            layer.fill(0.0);
        }
    }

    /// Scales all gradients, e.g. by `1/batch_size`.
    pub fn scale(&mut self, factor: f64) {
        for layer in &mut self.weights {
            for g in layer.iter_mut() {
                *g *= factor;
            }
        }
        for layer in &mut self.biases {
            for g in layer.iter_mut() {
                *g *= factor;
            }
        }
    }

    /// Euclidean norm of the flattened gradient vector.
    pub fn norm(&self) -> f64 {
        let mut total = 0.0;
        for layer in &self.weights {
            total += layer.iter().map(|g| g * g).sum::<f64>();
        }
        for layer in &self.biases {
            total += layer.iter().map(|g| g * g).sum::<f64>();
        }
        total.sqrt()
    }
}

/// Cached activations of one forward pass, needed by [`Mlp::backward`].
#[derive(Debug, Clone)]
pub struct ForwardCache {
    /// `activations[0]` is the input; `activations[i+1]` the output of layer
    /// `i`.
    activations: Vec<Vec<f64>>,
}

impl ForwardCache {
    /// Network output of the cached pass.
    pub fn output(&self) -> &[f64] {
        self.activations
            .last()
            .expect("cache has at least the input layer")
    }
}

/// A feed-forward network with dense layers.
///
/// # Examples
///
/// ```
/// use anubis_nn::{Activation, Mlp};
///
/// // 2 inputs -> 8 tanh -> 1 linear output.
/// let mlp = Mlp::new(&[2, 8, 1], Activation::Tanh, 42);
/// let y = mlp.forward(&[0.5, -0.5]);
/// assert_eq!(y.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Layer>,
}

impl Mlp {
    /// Builds a network with the given layer sizes (`sizes[0]` inputs,
    /// `sizes.last()` outputs), `hidden` activation on all but the last
    /// layer, identity on the output, and Xavier-uniform initialization.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are given or any size is zero; layer
    /// shapes are a static property of the calling code, not runtime data.
    pub fn new(sizes: &[usize], hidden: Activation, seed: u64) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output sizes");
        assert!(sizes.iter().all(|&s| s > 0), "layer sizes must be positive");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut layers = Vec::with_capacity(sizes.len() - 1);
        for (i, window) in sizes.windows(2).enumerate() {
            let (inputs, outputs) = (window[0], window[1]);
            let limit = (6.0 / (inputs + outputs) as f64).sqrt();
            let weights: Vec<f64> = (0..inputs * outputs)
                .map(|_| rng.random_range(-limit..limit))
                .collect();
            let activation = if i == sizes.len() - 2 {
                Activation::Identity
            } else {
                hidden
            };
            layers.push(Layer {
                weights,
                biases: vec![0.0; outputs],
                inputs,
                outputs,
                activation,
            });
        }
        Self { layers }
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.layers[0].inputs
    }

    /// Output dimension.
    pub fn output_dim(&self) -> usize {
        self.layers.last().expect("at least one layer").outputs
    }

    /// Runs a forward pass and returns only the output.
    ///
    /// # Panics
    ///
    /// Panics if `input` does not match [`Mlp::input_dim`].
    pub fn forward(&self, input: &[f64]) -> Vec<f64> {
        self.forward_cached(input)
            .activations
            .pop()
            .expect("non-empty")
    }

    /// Scalar-output convenience for risk networks.
    pub fn forward_scalar(&self, input: &[f64]) -> f64 {
        debug_assert_eq!(self.output_dim(), 1);
        self.forward(input)[0]
    }

    /// Runs a forward pass keeping all intermediate activations for a later
    /// [`Mlp::backward`] call.
    pub fn forward_cached(&self, input: &[f64]) -> ForwardCache {
        assert_eq!(input.len(), self.input_dim(), "input dimension mismatch");
        let mut activations = Vec::with_capacity(self.layers.len() + 1);
        activations.push(input.to_vec());
        let mut buffer = Vec::new();
        for layer in &self.layers {
            layer.forward(activations.last().expect("non-empty"), &mut buffer);
            activations.push(buffer.clone());
        }
        ForwardCache { activations }
    }

    /// Allocates a zeroed gradient accumulator matching this network.
    pub fn zero_gradients(&self) -> Gradients {
        Gradients {
            weights: self
                .layers
                .iter()
                .map(|l| vec![0.0; l.weights.len()])
                .collect(),
            biases: self
                .layers
                .iter()
                .map(|l| vec![0.0; l.biases.len()])
                .collect(),
        }
    }

    /// Backpropagates `output_grad` (∂loss/∂output) through the cached pass,
    /// **adding** parameter gradients into `grads`, and returns
    /// ∂loss/∂input.
    ///
    /// # Panics
    ///
    /// Panics if `output_grad` does not match the output dimension or
    /// `grads` was built for a different architecture.
    pub fn backward(
        &self,
        cache: &ForwardCache,
        output_grad: &[f64],
        grads: &mut Gradients,
    ) -> Vec<f64> {
        assert_eq!(
            output_grad.len(),
            self.output_dim(),
            "output gradient mismatch"
        );
        let mut delta = output_grad.to_vec();
        for (l, layer) in self.layers.iter().enumerate().rev() {
            let output = &cache.activations[l + 1];
            let input = &cache.activations[l];
            // δ ← δ ⊙ f'(z), expressed through the activated outputs.
            for (d, &y) in delta.iter_mut().zip(output) {
                *d *= layer.activation.derivative_from_output(y);
            }
            let w_grad = &mut grads.weights[l];
            let b_grad = &mut grads.biases[l];
            assert_eq!(w_grad.len(), layer.weights.len(), "gradient shape mismatch");
            let mut next_delta = vec![0.0; layer.inputs];
            for o in 0..layer.outputs {
                b_grad[o] += delta[o];
                let row = o * layer.inputs;
                for i in 0..layer.inputs {
                    w_grad[row + i] += delta[o] * input[i];
                    next_delta[i] += delta[o] * layer.weights[row + i];
                }
            }
            delta = next_delta;
        }
        delta
    }

    /// Flattens a gradient accumulator into the canonical parameter
    /// order (layer by layer, weights then biases) — useful for
    /// finite-difference verification and optimizer diagnostics.
    pub fn flattened_gradients(grads: &Gradients) -> Vec<f64> {
        Self::flatten_gradients(grads).collect()
    }

    /// Adds `delta` to the parameter at flattened `index` (same order as
    /// [`Mlp::flattened_gradients`]); a no-op for out-of-range indices.
    pub fn perturb_parameter(&mut self, index: usize, delta: f64) {
        self.for_each_parameter(|i, value| {
            if i == index {
                *value += delta;
            }
        });
    }

    /// Total number of scalar parameters.
    pub fn parameter_count(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.weights.len() + l.biases.len())
            .sum()
    }

    /// Applies an in-place update `θ ← θ + update(θ_index)`, visiting
    /// parameters layer by layer (weights then biases). Used by optimizers.
    pub(crate) fn for_each_parameter(&mut self, mut update: impl FnMut(usize, &mut f64)) {
        let mut index = 0;
        for layer in &mut self.layers {
            for w in &mut layer.weights {
                update(index, w);
                index += 1;
            }
            for b in &mut layer.biases {
                update(index, b);
                index += 1;
            }
        }
    }

    /// Iterates gradients in the same flattened order as
    /// [`Mlp::for_each_parameter`].
    pub(crate) fn flatten_gradients(grads: &Gradients) -> impl Iterator<Item = f64> + '_ {
        grads
            .weights
            .iter()
            .zip(&grads.biases)
            .flat_map(|(w, b)| w.iter().chain(b.iter()).copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shapes() {
        let mlp = Mlp::new(&[3, 5, 2], Activation::Tanh, 1);
        assert_eq!(mlp.input_dim(), 3);
        assert_eq!(mlp.output_dim(), 2);
        assert_eq!(mlp.forward(&[0.1, 0.2, 0.3]).len(), 2);
        assert_eq!(mlp.parameter_count(), 3 * 5 + 5 + 5 * 2 + 2);
    }

    #[test]
    fn deterministic_initialization() {
        let a = Mlp::new(&[2, 4, 1], Activation::Relu, 9);
        let b = Mlp::new(&[2, 4, 1], Activation::Relu, 9);
        assert_eq!(a.forward(&[0.3, -0.7]), b.forward(&[0.3, -0.7]));
        let c = Mlp::new(&[2, 4, 1], Activation::Relu, 10);
        assert_ne!(a.forward(&[0.3, -0.7]), c.forward(&[0.3, -0.7]));
    }

    #[test]
    #[should_panic(expected = "input dimension mismatch")]
    fn rejects_wrong_input_dim() {
        let mlp = Mlp::new(&[3, 1], Activation::Tanh, 0);
        mlp.forward(&[1.0]);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let mlp = Mlp::new(&[2, 6, 1], Activation::Tanh, 3);
        let input = [0.4, -0.9];
        // Loss = 0.5 * y^2 so dLoss/dy = y.
        let cache = mlp.forward_cached(&input);
        let y = cache.output()[0];
        let mut grads = mlp.zero_gradients();
        mlp.backward(&cache, &[y], &mut grads);
        let analytic: Vec<f64> = Mlp::flatten_gradients(&grads).collect();

        let eps = 1e-6;
        let mut numeric = Vec::with_capacity(analytic.len());
        for p in 0..mlp.parameter_count() {
            let loss_at = |mlp: &Mlp| {
                let out = mlp.forward(&input)[0];
                0.5 * out * out
            };
            let mut plus = mlp.clone();
            plus.for_each_parameter(|i, v| {
                if i == p {
                    *v += eps;
                }
            });
            let mut minus = mlp.clone();
            minus.for_each_parameter(|i, v| {
                if i == p {
                    *v -= eps;
                }
            });
            numeric.push((loss_at(&plus) - loss_at(&minus)) / (2.0 * eps));
        }
        for (i, (a, n)) in analytic.iter().zip(&numeric).enumerate() {
            assert!(
                (a - n).abs() < 1e-5,
                "parameter {i}: analytic {a} vs numeric {n}"
            );
        }
    }

    #[test]
    fn input_gradient_matches_finite_differences() {
        let mlp = Mlp::new(&[2, 4, 1], Activation::Tanh, 5);
        let input = [0.2, 0.7];
        let cache = mlp.forward_cached(&input);
        let y = cache.output()[0];
        let mut grads = mlp.zero_gradients();
        let input_grad = mlp.backward(&cache, &[y], &mut grads);

        let eps = 1e-6;
        for d in 0..2 {
            let mut plus = input;
            plus[d] += eps;
            let mut minus = input;
            minus[d] -= eps;
            let loss = |x: &[f64]| {
                let out = mlp.forward(x)[0];
                0.5 * out * out
            };
            let numeric = (loss(&plus) - loss(&minus)) / (2.0 * eps);
            assert!(
                (input_grad[d] - numeric).abs() < 1e-5,
                "input dim {d}: analytic {} vs numeric {numeric}",
                input_grad[d]
            );
        }
    }

    #[test]
    fn backward_accumulates_across_calls() {
        let mlp = Mlp::new(&[1, 3, 1], Activation::Relu, 2);
        let cache = mlp.forward_cached(&[0.5]);
        let mut once = mlp.zero_gradients();
        mlp.backward(&cache, &[1.0], &mut once);
        let mut twice = mlp.zero_gradients();
        mlp.backward(&cache, &[1.0], &mut twice);
        mlp.backward(&cache, &[1.0], &mut twice);
        let a: Vec<f64> = Mlp::flatten_gradients(&once).collect();
        let b: Vec<f64> = Mlp::flatten_gradients(&twice).collect();
        for (x, y) in a.iter().zip(&b) {
            assert!((2.0 * x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn gradients_reset_and_scale() {
        let mlp = Mlp::new(&[1, 2, 1], Activation::Tanh, 0);
        let cache = mlp.forward_cached(&[1.0]);
        let mut grads = mlp.zero_gradients();
        mlp.backward(&cache, &[1.0], &mut grads);
        assert!(grads.norm() > 0.0);
        grads.scale(0.0);
        assert_eq!(grads.norm(), 0.0);
        mlp.backward(&cache, &[1.0], &mut grads);
        grads.reset();
        assert_eq!(grads.norm(), 0.0);
    }

    #[test]
    fn relu_activation_clamps() {
        assert_eq!(Activation::Relu.apply(-1.0), 0.0);
        assert_eq!(Activation::Relu.apply(2.0), 2.0);
        assert_eq!(Activation::Relu.derivative_from_output(0.0), 0.0);
        assert_eq!(Activation::Relu.derivative_from_output(3.0), 1.0);
    }
}

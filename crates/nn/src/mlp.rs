//! Multilayer perceptron with manual backpropagation.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Activation function applied element-wise after a dense layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Identity (used on output layers).
    Identity,
    /// Hyperbolic tangent.
    Tanh,
    /// Rectified linear unit.
    Relu,
}

impl Activation {
    fn apply(self, x: f64) -> f64 {
        match self {
            Self::Identity => x,
            Self::Tanh => crate::fastmath::tanh(x),
            Self::Relu => x.max(0.0),
        }
    }

    /// Derivative expressed through the *activated* value `y = f(x)`, which
    /// is what the backward pass has cached.
    fn derivative_from_output(self, y: f64) -> f64 {
        match self {
            Self::Identity => 1.0,
            Self::Tanh => 1.0 - y * y,
            Self::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }
}

/// One dense layer: `y = f(W x + b)` with `W` stored row-major
/// (`outputs × inputs`).
///
/// `weights_t` mirrors `weights` column-major (`inputs × outputs`) so the
/// forward mat-vec can walk output neurons contiguously; it is derived
/// state, refreshed by [`Mlp::for_each_parameter`] — the only place
/// parameters mutate — and never read by the backward pass.
#[derive(Debug, Clone)]
struct Layer {
    weights: Vec<f64>,
    weights_t: Vec<f64>,
    biases: Vec<f64>,
    inputs: usize,
    outputs: usize,
    activation: Activation,
}

impl Layer {
    fn forward(&self, input: &[f64], output: &mut Vec<f64>) {
        let n = self.inputs;
        let m = self.outputs;
        let x = &input[..n.min(input.len())];
        output.clear();
        output.resize(m, 0.0);
        let out = &mut output[..m];
        // Column-major accumulation over the transposed weights: for each
        // input element, all output accumulators advance by one product.
        // Neuron `o` still sums `w[o][i]·x[i]` in ascending `i` order
        // starting from 0.0 — exactly the one-neuron `sum()` — so results
        // are bit-identical; the elementwise inner loop merely lets the
        // independent per-neuron chains run as SIMD lanes.
        for (i, &xi) in x.iter().enumerate() {
            let col = &self.weights_t[i * m..(i + 1) * m];
            for (acc, &w) in out.iter_mut().zip(col) {
                *acc += w * xi;
            }
        }
        // Bias + activation as a second pass: each neuron's value and op
        // sequence is unchanged, but batching the (branch-heavy, division-
        // bound) tanh calls lets them run through the four-lane kernel.
        match self.activation {
            Activation::Tanh => {
                for (acc, &b) in out.iter_mut().zip(&self.biases) {
                    *acc += b;
                }
                crate::fastmath::tanh_slice(out);
            }
            act => {
                for (acc, &b) in out.iter_mut().zip(&self.biases) {
                    *acc = act.apply(*acc + b);
                }
            }
        }
    }

    /// Rebuilds the column-major weight mirror from the row-major source.
    fn refresh_transposed(&mut self) {
        self.weights_t.resize(self.weights.len(), 0.0);
        for o in 0..self.outputs {
            let row = &self.weights[o * self.inputs..(o + 1) * self.inputs];
            for (i, &w) in row.iter().enumerate() {
                self.weights_t[i * self.outputs + o] = w;
            }
        }
    }
}

/// Parameter-shaped gradient accumulator for an [`Mlp`].
///
/// Obtained from [`Mlp::zero_gradients`]; filled by [`Mlp::backward`] (which
/// *adds* into it, so several backward passes accumulate naturally) and
/// consumed by [`crate::Adam::step`].
#[derive(Debug, Clone)]
pub struct Gradients {
    pub(crate) weights: Vec<Vec<f64>>,
    pub(crate) biases: Vec<Vec<f64>>,
}

impl Gradients {
    /// Resets all accumulated gradients to zero.
    pub fn reset(&mut self) {
        for layer in &mut self.weights {
            layer.fill(0.0);
        }
        for layer in &mut self.biases {
            layer.fill(0.0);
        }
    }

    /// Scales all gradients, e.g. by `1/batch_size`.
    pub fn scale(&mut self, factor: f64) {
        for layer in &mut self.weights {
            for g in layer.iter_mut() {
                *g *= factor;
            }
        }
        for layer in &mut self.biases {
            for g in layer.iter_mut() {
                *g *= factor;
            }
        }
    }

    /// Euclidean norm of the flattened gradient vector.
    pub fn norm(&self) -> f64 {
        let mut total = 0.0;
        for layer in &self.weights {
            total += layer.iter().map(|g| g * g).sum::<f64>();
        }
        for layer in &self.biases {
            total += layer.iter().map(|g| g * g).sum::<f64>();
        }
        total.sqrt()
    }
}

/// Cached activations of one forward pass, needed by [`Mlp::backward`].
#[derive(Debug, Clone)]
pub struct ForwardCache {
    /// `activations[0]` is the input; `activations[i+1]` the output of layer
    /// `i`.
    activations: Vec<Vec<f64>>,
}

impl ForwardCache {
    /// Network output of the cached pass.
    pub fn output(&self) -> &[f64] {
        self.activations
            .last()
            .expect("cache has at least the input layer")
    }
}

/// Reusable delta buffers for allocation-free backward passes.
///
/// One scratch serves any number of [`Mlp::backward_flat`] calls on the
/// same network; reuse avoids the per-call `Vec` allocations of
/// [`Mlp::backward`] on hot training loops.
#[derive(Debug, Clone, Default)]
pub struct BackwardScratch {
    delta: Vec<f64>,
    next_delta: Vec<f64>,
}

/// A feed-forward network with dense layers.
///
/// # Examples
///
/// ```
/// use anubis_nn::{Activation, Mlp};
///
/// // 2 inputs -> 8 tanh -> 1 linear output.
/// let mlp = Mlp::new(&[2, 8, 1], Activation::Tanh, 42);
/// let y = mlp.forward(&[0.5, -0.5]);
/// assert_eq!(y.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Layer>,
}

impl Mlp {
    /// Builds a network with the given layer sizes (`sizes[0]` inputs,
    /// `sizes.last()` outputs), `hidden` activation on all but the last
    /// layer, identity on the output, and Xavier-uniform initialization.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are given or any size is zero; layer
    /// shapes are a static property of the calling code, not runtime data.
    pub fn new(sizes: &[usize], hidden: Activation, seed: u64) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output sizes");
        assert!(sizes.iter().all(|&s| s > 0), "layer sizes must be positive");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut layers = Vec::with_capacity(sizes.len() - 1);
        for (i, window) in sizes.windows(2).enumerate() {
            let (inputs, outputs) = (window[0], window[1]);
            let limit = (6.0 / (inputs + outputs) as f64).sqrt();
            let weights: Vec<f64> = (0..inputs * outputs)
                .map(|_| rng.random_range(-limit..limit))
                .collect();
            let activation = if i == sizes.len() - 2 {
                Activation::Identity
            } else {
                hidden
            };
            layers.push(Layer {
                weights,
                weights_t: Vec::new(),
                biases: vec![0.0; outputs],
                inputs,
                outputs,
                activation,
            });
        }
        for layer in &mut layers {
            layer.refresh_transposed();
        }
        Self { layers }
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.layers[0].inputs
    }

    /// Output dimension.
    pub fn output_dim(&self) -> usize {
        self.layers.last().expect("at least one layer").outputs
    }

    /// Runs a forward pass and returns only the output.
    ///
    /// # Panics
    ///
    /// Panics if `input` does not match [`Mlp::input_dim`].
    pub fn forward(&self, input: &[f64]) -> Vec<f64> {
        self.forward_cached(input)
            .activations
            .pop()
            .expect("non-empty")
    }

    /// Scalar-output convenience for risk networks.
    pub fn forward_scalar(&self, input: &[f64]) -> f64 {
        debug_assert_eq!(self.output_dim(), 1);
        self.forward(input)[0]
    }

    /// Runs a forward pass keeping all intermediate activations for a later
    /// [`Mlp::backward`] call.
    pub fn forward_cached(&self, input: &[f64]) -> ForwardCache {
        assert_eq!(input.len(), self.input_dim(), "input dimension mismatch");
        let mut activations = Vec::with_capacity(self.layers.len() + 1);
        activations.push(input.to_vec());
        let mut buffer = Vec::new();
        for layer in &self.layers {
            layer.forward(activations.last().expect("non-empty"), &mut buffer);
            activations.push(buffer.clone());
        }
        ForwardCache { activations }
    }

    /// Allocates a pre-sized, empty [`ForwardCache`] for [`Mlp::forward_into`].
    pub fn empty_cache(&self) -> ForwardCache {
        let mut activations = Vec::with_capacity(self.layers.len() + 1);
        activations.push(Vec::with_capacity(self.input_dim()));
        for layer in &self.layers {
            activations.push(Vec::with_capacity(layer.outputs));
        }
        ForwardCache { activations }
    }

    /// Runs a forward pass into a reusable cache: bit-identical activations
    /// to [`Mlp::forward_cached`] with no allocations after the first use.
    ///
    /// # Panics
    ///
    /// Panics if `input` does not match [`Mlp::input_dim`].
    pub fn forward_into(&self, input: &[f64], cache: &mut ForwardCache) {
        assert_eq!(input.len(), self.input_dim(), "input dimension mismatch");
        cache
            .activations
            .resize_with(self.layers.len() + 1, Vec::new);
        cache.activations[0].clear();
        cache.activations[0].extend_from_slice(input);
        for (l, layer) in self.layers.iter().enumerate() {
            let (before, after) = cache.activations.split_at_mut(l + 1);
            layer.forward(&before[l], &mut after[0]);
        }
    }

    /// Scalar-output forward pass through a reusable cache.
    pub fn forward_scalar_into(&self, input: &[f64], cache: &mut ForwardCache) -> f64 {
        debug_assert_eq!(self.output_dim(), 1);
        self.forward_into(input, cache);
        cache.output()[0]
    }

    /// Allocates a zeroed gradient accumulator matching this network.
    pub fn zero_gradients(&self) -> Gradients {
        Gradients {
            weights: self
                .layers
                .iter()
                .map(|l| vec![0.0; l.weights.len()])
                .collect(),
            biases: self
                .layers
                .iter()
                .map(|l| vec![0.0; l.biases.len()])
                .collect(),
        }
    }

    /// Backpropagates `output_grad` (∂loss/∂output) through the cached pass,
    /// **adding** parameter gradients into `grads`, and returns
    /// ∂loss/∂input.
    ///
    /// # Panics
    ///
    /// Panics if `output_grad` does not match the output dimension or
    /// `grads` was built for a different architecture.
    pub fn backward(
        &self,
        cache: &ForwardCache,
        output_grad: &[f64],
        grads: &mut Gradients,
    ) -> Vec<f64> {
        assert_eq!(
            output_grad.len(),
            self.output_dim(),
            "output gradient mismatch"
        );
        let mut delta = output_grad.to_vec();
        for (l, layer) in self.layers.iter().enumerate().rev() {
            let output = &cache.activations[l + 1];
            let input = &cache.activations[l];
            // δ ← δ ⊙ f'(z), expressed through the activated outputs.
            for (d, &y) in delta.iter_mut().zip(output) {
                *d *= layer.activation.derivative_from_output(y);
            }
            let w_grad = &mut grads.weights[l];
            let b_grad = &mut grads.biases[l];
            assert_eq!(w_grad.len(), layer.weights.len(), "gradient shape mismatch");
            let mut next_delta = vec![0.0; layer.inputs];
            for o in 0..layer.outputs {
                b_grad[o] += delta[o];
                let row = o * layer.inputs;
                for i in 0..layer.inputs {
                    w_grad[row + i] += delta[o] * input[i];
                    next_delta[i] += delta[o] * layer.weights[row + i];
                }
            }
            delta = next_delta;
        }
        delta
    }

    /// Backpropagates `output_grad` through the cached pass, **adding**
    /// parameter gradients into `flat` (canonical order: layer by layer,
    /// weights then biases — the order of [`Mlp::flattened_gradients`]).
    ///
    /// Performs the exact additions of [`Mlp::backward`] in the same
    /// order, so accumulating several calls into one flat buffer is
    /// bit-identical to accumulating them into a [`Gradients`]; the
    /// reusable `scratch` replaces the per-call `Vec` allocations.
    ///
    /// # Panics
    ///
    /// Panics if `output_grad` does not match the output dimension or
    /// `flat.len()` is not [`Mlp::parameter_count`].
    pub fn backward_flat(
        &self,
        cache: &ForwardCache,
        output_grad: &[f64],
        flat: &mut [f64],
        scratch: &mut BackwardScratch,
    ) {
        assert_eq!(
            output_grad.len(),
            self.output_dim(),
            "output gradient mismatch"
        );
        assert_eq!(
            flat.len(),
            self.parameter_count(),
            "gradient shape mismatch"
        );
        let delta = &mut scratch.delta;
        let next_delta = &mut scratch.next_delta;
        delta.clear();
        delta.extend_from_slice(output_grad);
        // Flat offset of the layer *after* the current one, maintained
        // while iterating in reverse.
        let mut offset = self.parameter_count();
        for (l, layer) in self.layers.iter().enumerate().rev() {
            offset -= layer.weights.len() + layer.biases.len();
            let output = &cache.activations[l + 1];
            let input = &cache.activations[l];
            for (d, &y) in delta.iter_mut().zip(output) {
                *d *= layer.activation.derivative_from_output(y);
            }
            let (w_grad, b_grad) = flat[offset..offset + layer.weights.len() + layer.biases.len()]
                .split_at_mut(layer.weights.len());
            let n = layer.inputs;
            let x = &input[..n];
            // The first layer's input gradient is never read, so skip it.
            let need_next = l > 0;
            next_delta.clear();
            next_delta.resize(n, 0.0);
            for o in 0..layer.outputs {
                let d_o = delta[o];
                b_grad[o] += d_o;
                let row = o * n;
                // Elementwise accumulations: every element sees the same
                // single multiply-add it did in the nested scalar loop, so
                // the streams vectorize while gradients stay bit-identical;
                // fusing the weight-gradient and input-delta updates into
                // one pass shares the loop and the `d_o` broadcast.
                if need_next {
                    let w = &layer.weights[row..row + n];
                    let wg = &mut w_grad[row..row + n];
                    let fused = wg.iter_mut().zip(x).zip(next_delta.iter_mut().zip(w));
                    for ((g, &xi), (nd, &wi)) in fused {
                        *g += d_o * xi;
                        *nd += d_o * wi;
                    }
                } else {
                    for (g, &xi) in w_grad[row..row + n].iter_mut().zip(x) {
                        *g += d_o * xi;
                    }
                }
            }
            std::mem::swap(delta, next_delta);
        }
    }

    /// Flattens a gradient accumulator into the canonical parameter
    /// order (layer by layer, weights then biases) — useful for
    /// finite-difference verification and optimizer diagnostics.
    pub fn flattened_gradients(grads: &Gradients) -> Vec<f64> {
        Self::flatten_gradients(grads).collect()
    }

    /// Adds `delta` to the parameter at flattened `index` (same order as
    /// [`Mlp::flattened_gradients`]); a no-op for out-of-range indices.
    pub fn perturb_parameter(&mut self, index: usize, delta: f64) {
        self.for_each_parameter(|i, value| {
            if i == index {
                *value += delta;
            }
        });
    }

    /// Total number of scalar parameters.
    pub fn parameter_count(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.weights.len() + l.biases.len())
            .sum()
    }

    /// Yields each layer's parameter storage in canonical flattened order
    /// (layer by layer, weights then biases) as mutable slices, so
    /// optimizers can run vectorizable elementwise updates. Callers that
    /// mutate through this **must** call [`Mlp::refresh_transposed`]
    /// afterwards.
    pub(crate) fn parameter_slices_mut(&mut self) -> impl Iterator<Item = &mut [f64]> + '_ {
        self.layers.iter_mut().flat_map(|layer| {
            let Layer {
                weights, biases, ..
            } = layer;
            [weights.as_mut_slice(), biases.as_mut_slice()]
        })
    }

    /// Rebuilds every layer's column-major weight mirror; required after
    /// any parameter mutation that bypasses [`Mlp::for_each_parameter`].
    pub(crate) fn refresh_transposed(&mut self) {
        for layer in &mut self.layers {
            layer.refresh_transposed();
        }
    }

    /// Applies an in-place update `θ ← θ + update(θ_index)`, visiting
    /// parameters layer by layer (weights then biases). Used by optimizers.
    /// The forward pass's transposed weight mirror is refreshed afterwards,
    /// keeping this the single gateway through which parameters change.
    pub(crate) fn for_each_parameter(&mut self, mut update: impl FnMut(usize, &mut f64)) {
        let mut index = 0;
        for layer in &mut self.layers {
            for w in &mut layer.weights {
                update(index, w);
                index += 1;
            }
            for b in &mut layer.biases {
                update(index, b);
                index += 1;
            }
            layer.refresh_transposed();
        }
    }

    /// Iterates gradients in the same flattened order as
    /// [`Mlp::for_each_parameter`].
    pub(crate) fn flatten_gradients(grads: &Gradients) -> impl Iterator<Item = f64> + '_ {
        grads
            .weights
            .iter()
            .zip(&grads.biases)
            .flat_map(|(w, b)| w.iter().chain(b.iter()).copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shapes() {
        let mlp = Mlp::new(&[3, 5, 2], Activation::Tanh, 1);
        assert_eq!(mlp.input_dim(), 3);
        assert_eq!(mlp.output_dim(), 2);
        assert_eq!(mlp.forward(&[0.1, 0.2, 0.3]).len(), 2);
        assert_eq!(mlp.parameter_count(), 3 * 5 + 5 + 5 * 2 + 2);
    }

    #[test]
    fn deterministic_initialization() {
        let a = Mlp::new(&[2, 4, 1], Activation::Relu, 9);
        let b = Mlp::new(&[2, 4, 1], Activation::Relu, 9);
        assert_eq!(a.forward(&[0.3, -0.7]), b.forward(&[0.3, -0.7]));
        let c = Mlp::new(&[2, 4, 1], Activation::Relu, 10);
        assert_ne!(a.forward(&[0.3, -0.7]), c.forward(&[0.3, -0.7]));
    }

    #[test]
    #[should_panic(expected = "input dimension mismatch")]
    fn rejects_wrong_input_dim() {
        let mlp = Mlp::new(&[3, 1], Activation::Tanh, 0);
        mlp.forward(&[1.0]);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let mlp = Mlp::new(&[2, 6, 1], Activation::Tanh, 3);
        let input = [0.4, -0.9];
        // Loss = 0.5 * y^2 so dLoss/dy = y.
        let cache = mlp.forward_cached(&input);
        let y = cache.output()[0];
        let mut grads = mlp.zero_gradients();
        mlp.backward(&cache, &[y], &mut grads);
        let analytic: Vec<f64> = Mlp::flatten_gradients(&grads).collect();

        let eps = 1e-6;
        let mut numeric = Vec::with_capacity(analytic.len());
        for p in 0..mlp.parameter_count() {
            let loss_at = |mlp: &Mlp| {
                let out = mlp.forward(&input)[0];
                0.5 * out * out
            };
            let mut plus = mlp.clone();
            plus.for_each_parameter(|i, v| {
                if i == p {
                    *v += eps;
                }
            });
            let mut minus = mlp.clone();
            minus.for_each_parameter(|i, v| {
                if i == p {
                    *v -= eps;
                }
            });
            numeric.push((loss_at(&plus) - loss_at(&minus)) / (2.0 * eps));
        }
        for (i, (a, n)) in analytic.iter().zip(&numeric).enumerate() {
            assert!(
                (a - n).abs() < 1e-5,
                "parameter {i}: analytic {a} vs numeric {n}"
            );
        }
    }

    #[test]
    fn input_gradient_matches_finite_differences() {
        let mlp = Mlp::new(&[2, 4, 1], Activation::Tanh, 5);
        let input = [0.2, 0.7];
        let cache = mlp.forward_cached(&input);
        let y = cache.output()[0];
        let mut grads = mlp.zero_gradients();
        let input_grad = mlp.backward(&cache, &[y], &mut grads);

        let eps = 1e-6;
        for d in 0..2 {
            let mut plus = input;
            plus[d] += eps;
            let mut minus = input;
            minus[d] -= eps;
            let loss = |x: &[f64]| {
                let out = mlp.forward(x)[0];
                0.5 * out * out
            };
            let numeric = (loss(&plus) - loss(&minus)) / (2.0 * eps);
            assert!(
                (input_grad[d] - numeric).abs() < 1e-5,
                "input dim {d}: analytic {} vs numeric {numeric}",
                input_grad[d]
            );
        }
    }

    #[test]
    fn backward_accumulates_across_calls() {
        let mlp = Mlp::new(&[1, 3, 1], Activation::Relu, 2);
        let cache = mlp.forward_cached(&[0.5]);
        let mut once = mlp.zero_gradients();
        mlp.backward(&cache, &[1.0], &mut once);
        let mut twice = mlp.zero_gradients();
        mlp.backward(&cache, &[1.0], &mut twice);
        mlp.backward(&cache, &[1.0], &mut twice);
        let a: Vec<f64> = Mlp::flatten_gradients(&once).collect();
        let b: Vec<f64> = Mlp::flatten_gradients(&twice).collect();
        for (x, y) in a.iter().zip(&b) {
            assert!((2.0 * x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn gradients_reset_and_scale() {
        let mlp = Mlp::new(&[1, 2, 1], Activation::Tanh, 0);
        let cache = mlp.forward_cached(&[1.0]);
        let mut grads = mlp.zero_gradients();
        mlp.backward(&cache, &[1.0], &mut grads);
        assert!(grads.norm() > 0.0);
        grads.scale(0.0);
        assert_eq!(grads.norm(), 0.0);
        mlp.backward(&cache, &[1.0], &mut grads);
        grads.reset();
        assert_eq!(grads.norm(), 0.0);
    }

    #[test]
    fn forward_into_matches_forward_cached_bitwise() {
        let mlp = Mlp::new(&[3, 8, 5, 2], Activation::Tanh, 11);
        let mut cache = mlp.empty_cache();
        for k in 0..5 {
            let input = [0.3 * k as f64, -0.7, 1.9 - k as f64];
            let fresh = mlp.forward_cached(&input);
            mlp.forward_into(&input, &mut cache);
            assert_eq!(fresh.activations, cache.activations);
        }
        let scalar = Mlp::new(&[2, 4, 1], Activation::Tanh, 3);
        let mut cache = scalar.empty_cache();
        assert_eq!(
            scalar.forward_scalar_into(&[0.2, -0.4], &mut cache),
            scalar.forward_scalar(&[0.2, -0.4])
        );
    }

    #[test]
    fn backward_flat_matches_backward_bitwise() {
        let mlp = Mlp::new(&[2, 6, 4, 1], Activation::Relu, 13);
        let mut grads = mlp.zero_gradients();
        let mut flat = vec![0.0; mlp.parameter_count()];
        let mut scratch = BackwardScratch::default();
        // Accumulate several backward passes both ways; every intermediate
        // state must agree bit for bit.
        for k in 0..4 {
            let cache = mlp.forward_cached(&[0.4 - k as f64, 0.9]);
            let g = [cache.output()[0] - 0.5];
            mlp.backward(&cache, &g, &mut grads);
            mlp.backward_flat(&cache, &g, &mut flat, &mut scratch);
            let reference: Vec<f64> = Mlp::flatten_gradients(&grads).collect();
            assert_eq!(reference, flat);
        }
    }

    #[test]
    fn relu_activation_clamps() {
        assert_eq!(Activation::Relu.apply(-1.0), 0.0);
        assert_eq!(Activation::Relu.apply(2.0), 2.0);
        assert_eq!(Activation::Relu.derivative_from_output(0.0), 0.0);
        assert_eq!(Activation::Relu.derivative_from_output(3.0), 1.0);
    }
}

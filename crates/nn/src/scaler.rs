//! Feature standardization for network inputs.

/// Per-feature standardization `x' = (x − μ) / σ`.
///
/// Survival covariates (uptime hours, incident counts, MTBIs) span wildly
/// different scales; the Cox-Time MLP trains poorly on raw values, so the
/// Selector standardizes features with statistics fitted on the training
/// split only.
#[derive(Debug, Clone, PartialEq)]
pub struct StandardScaler {
    means: Vec<f64>,
    std_devs: Vec<f64>,
}

impl StandardScaler {
    /// Fits per-feature mean and standard deviation on `rows`.
    ///
    /// Features with zero variance get σ = 1 so they standardize to 0
    /// instead of NaN. Returns an identity scaler (zero features) for empty
    /// input.
    pub fn fit(rows: &[Vec<f64>]) -> Self {
        if rows.is_empty() {
            return Self {
                means: Vec::new(),
                std_devs: Vec::new(),
            };
        }
        let dim = rows[0].len();
        let n = rows.len() as f64;
        let mut means = vec![0.0; dim];
        for row in rows {
            for (m, &v) in means.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut vars = vec![0.0; dim];
        for row in rows {
            for ((v, &x), &m) in vars.iter_mut().zip(row).zip(&means) {
                *v += (x - m) * (x - m);
            }
        }
        let std_devs = vars
            .into_iter()
            .map(|v| {
                let s = (v / n).sqrt();
                if s > 1e-12 {
                    s
                } else {
                    1.0
                }
            })
            .collect();
        Self { means, std_devs }
    }

    /// Standardizes one feature row.
    ///
    /// # Panics
    ///
    /// Panics if `row` does not match the fitted dimension.
    pub fn transform(&self, row: &[f64]) -> Vec<f64> {
        assert_eq!(row.len(), self.means.len(), "feature dimension mismatch");
        row.iter()
            .zip(self.means.iter().zip(&self.std_devs))
            .map(|(&x, (&m, &s))| (x - m) / s)
            .collect()
    }

    /// Standardizes many rows.
    pub fn transform_all(&self, rows: &[Vec<f64>]) -> Vec<Vec<f64>> {
        rows.iter().map(|r| self.transform(r)).collect()
    }

    /// Number of features the scaler was fitted on.
    pub fn dim(&self) -> usize {
        self.means.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardizes_to_zero_mean_unit_variance() {
        let rows = vec![vec![1.0, 100.0], vec![3.0, 300.0], vec![5.0, 500.0]];
        let scaler = StandardScaler::fit(&rows);
        let transformed = scaler.transform_all(&rows);
        for d in 0..2 {
            let mean: f64 = transformed.iter().map(|r| r[d]).sum::<f64>() / 3.0;
            let var: f64 = transformed.iter().map(|r| r[d] * r[d]).sum::<f64>() / 3.0;
            assert!(mean.abs() < 1e-12, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-9, "var {var}");
        }
    }

    #[test]
    fn constant_features_map_to_zero() {
        let rows = vec![vec![7.0], vec![7.0], vec![7.0]];
        let scaler = StandardScaler::fit(&rows);
        assert_eq!(scaler.transform(&[7.0]), vec![0.0]);
        assert_eq!(scaler.transform(&[8.0]), vec![1.0]);
    }

    #[test]
    fn empty_input_gives_identity() {
        let scaler = StandardScaler::fit(&[]);
        assert_eq!(scaler.dim(), 0);
        assert_eq!(scaler.transform(&[]), Vec::<f64>::new());
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn rejects_wrong_dimension() {
        let scaler = StandardScaler::fit(&[vec![1.0, 2.0]]);
        scaler.transform(&[1.0]);
    }
}

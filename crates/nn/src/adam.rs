//! Adam optimizer (Kingma & Ba, 2015).

use crate::mlp::{Gradients, Mlp};

/// Adam optimizer state over an [`Mlp`]'s flattened parameter vector.
///
/// # Examples
///
/// ```
/// use anubis_nn::{Activation, Adam, Mlp};
///
/// let mut mlp = Mlp::new(&[1, 4, 1], Activation::Tanh, 0);
/// let mut adam = Adam::new(&mlp, 1e-2);
/// // One regression step toward y = 2 at x = 1.
/// let cache = mlp.forward_cached(&[1.0]);
/// let err = cache.output()[0] - 2.0;
/// let mut grads = mlp.zero_gradients();
/// mlp.backward(&cache, &[err], &mut grads);
/// adam.step(&mut mlp, &grads);
/// ```
#[derive(Debug, Clone)]
pub struct Adam {
    learning_rate: f64,
    beta1: f64,
    beta2: f64,
    epsilon: f64,
    weight_decay: f64,
    first_moment: Vec<f64>,
    second_moment: Vec<f64>,
    timestep: u64,
}

impl Adam {
    /// Creates an optimizer for `mlp` with the given learning rate and the
    /// standard β₁ = 0.9, β₂ = 0.999 defaults.
    pub fn new(mlp: &Mlp, learning_rate: f64) -> Self {
        Self::with_betas(mlp, learning_rate, 0.9, 0.999)
    }

    /// Creates an optimizer with explicit moment decay rates.
    pub fn with_betas(mlp: &Mlp, learning_rate: f64, beta1: f64, beta2: f64) -> Self {
        let n = mlp.parameter_count();
        Self {
            learning_rate,
            beta1,
            beta2,
            epsilon: 1e-8,
            weight_decay: 0.0,
            first_moment: vec![0.0; n],
            second_moment: vec![0.0; n],
            timestep: 0,
        }
    }

    /// Enables decoupled (AdamW-style) weight decay: each step shrinks
    /// every parameter by `lr × decay` before the gradient update.
    pub fn with_weight_decay(mut self, decay: f64) -> Self {
        self.weight_decay = decay.max(0.0);
        self
    }

    /// Applies one Adam update of `mlp` using accumulated `grads`.
    ///
    /// # Panics
    ///
    /// Panics if `grads` (or this optimizer) was created for a different
    /// architecture.
    pub fn step(&mut self, mlp: &mut Mlp, grads: &Gradients) {
        let flattened: Vec<f64> = Mlp::flatten_gradients(grads).collect();
        self.step_flat(mlp, &flattened);
    }

    /// Applies one Adam update from an already-flattened gradient vector
    /// (canonical order of [`Mlp::flattened_gradients`]). Bit-identical to
    /// [`Adam::step`] on the equivalent [`Gradients`].
    ///
    /// # Panics
    ///
    /// Panics if `flattened` (or this optimizer) was created for a
    /// different architecture.
    pub fn step_flat(&mut self, mlp: &mut Mlp, flattened: &[f64]) {
        assert_eq!(
            flattened.len(),
            self.first_moment.len(),
            "gradient/optimizer shape mismatch"
        );
        self.timestep += 1;
        let t = self.timestep as i32;
        let bias1 = 1.0 - self.beta1.powi(t);
        let bias2 = 1.0 - self.beta2.powi(t);
        let (b1, b2, lr, eps) = (self.beta1, self.beta2, self.learning_rate, self.epsilon);
        let decay = self.weight_decay;
        let (m, v) = (&mut self.first_moment, &mut self.second_moment);
        // Walk the parameters as contiguous per-layer slices zipped with
        // the matching moment/gradient windows: the per-parameter update
        // is op-for-op the one the indexed closure form performed (so
        // results are bit-identical), but the elementwise loop vectorizes
        // (packed sqrt/divide included).
        let mut offset = 0;
        for params in mlp.parameter_slices_mut() {
            let count = params.len();
            let zipped = params
                .iter_mut()
                .zip(&mut m[offset..offset + count])
                .zip(&mut v[offset..offset + count])
                .zip(&flattened[offset..offset + count]);
            for (((value, mi), vi), &g) in zipped {
                *mi = b1 * *mi + (1.0 - b1) * g;
                *vi = b2 * *vi + (1.0 - b2) * g * g;
                let m_hat = *mi / bias1;
                let v_hat = *vi / bias2;
                *value -= lr * decay * *value;
                *value -= lr * m_hat / (v_hat.sqrt() + eps);
            }
            offset += count;
        }
        mlp.refresh_transposed();
    }

    /// Number of optimizer steps applied so far.
    pub fn timestep(&self) -> u64 {
        self.timestep
    }

    /// The configured learning rate.
    pub fn learning_rate(&self) -> f64 {
        self.learning_rate
    }

    /// Replaces the learning rate (e.g. for decay schedules).
    pub fn set_learning_rate(&mut self, learning_rate: f64) {
        self.learning_rate = learning_rate;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlp::{Activation, Mlp};

    /// Trains y = sin(2x) on a fixed grid and expects the loss to drop by
    /// 10x, exercising forward/backward/step end to end.
    #[test]
    fn regression_converges() {
        let mut mlp = Mlp::new(&[1, 16, 16, 1], Activation::Tanh, 7);
        let mut adam = Adam::new(&mlp, 5e-3);
        let inputs: Vec<f64> = (0..32).map(|i| -1.0 + i as f64 / 16.0).collect();
        let targets: Vec<f64> = inputs.iter().map(|x| (2.0 * x).sin()).collect();

        let loss_of = |mlp: &Mlp| -> f64 {
            inputs
                .iter()
                .zip(&targets)
                .map(|(&x, &t)| {
                    let y = mlp.forward_scalar(&[x]);
                    0.5 * (y - t) * (y - t)
                })
                .sum::<f64>()
                / inputs.len() as f64
        };

        let initial = loss_of(&mlp);
        for _ in 0..500 {
            let mut grads = mlp.zero_gradients();
            for (&x, &t) in inputs.iter().zip(&targets) {
                let cache = mlp.forward_cached(&[x]);
                let err = cache.output()[0] - t;
                mlp.backward(&cache, &[err], &mut grads);
            }
            grads.scale(1.0 / inputs.len() as f64);
            adam.step(&mut mlp, &grads);
        }
        let trained = loss_of(&mlp);
        assert!(
            trained < initial / 10.0,
            "loss must drop 10x: {initial} -> {trained}"
        );
        assert_eq!(adam.timestep(), 500);
    }

    #[test]
    fn step_moves_parameters_against_gradient() {
        let mut mlp = Mlp::new(&[1, 1], Activation::Identity, 0);
        let before = mlp.forward_scalar(&[1.0]);
        let cache = mlp.forward_cached(&[1.0]);
        let mut grads = mlp.zero_gradients();
        // dLoss/dy = +1 (loss increases with output) => output must shrink.
        mlp.backward(&cache, &[1.0], &mut grads);
        let mut adam = Adam::new(&mlp, 0.1);
        adam.step(&mut mlp, &grads);
        let after = mlp.forward_scalar(&[1.0]);
        assert!(after < before, "{after} !< {before}");
    }

    #[test]
    fn weight_decay_shrinks_parameters() {
        let mut mlp = Mlp::new(&[2, 4, 1], Activation::Tanh, 3);
        let before = mlp.forward_scalar(&[1.0, 1.0]).abs();
        let zero_grads = mlp.zero_gradients();
        let mut adam = Adam::new(&mlp, 0.1).with_weight_decay(0.5);
        for _ in 0..50 {
            adam.step(&mut mlp, &zero_grads);
        }
        let after = mlp.forward_scalar(&[1.0, 1.0]).abs();
        assert!(
            after < before * 0.2,
            "decay must shrink the net: {before} -> {after}"
        );
    }

    #[test]
    fn learning_rate_is_adjustable() {
        let mlp = Mlp::new(&[1, 1], Activation::Identity, 0);
        let mut adam = Adam::new(&mlp, 0.1);
        assert_eq!(adam.learning_rate(), 0.1);
        adam.set_learning_rate(0.01);
        assert_eq!(adam.learning_rate(), 0.01);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn rejects_mismatched_shapes() {
        let small = Mlp::new(&[1, 1], Activation::Identity, 0);
        let mut big = Mlp::new(&[2, 4, 1], Activation::Tanh, 0);
        let grads = small.zero_gradients();
        let mut adam = Adam::new(&big, 0.1);
        adam.step(&mut big, &grads);
    }
}

//! Minimal feed-forward neural-network substrate.
//!
//! The paper's Selector uses the Cox-Time survival model (Kvamme et al.),
//! whose relative-risk function `g(t, x)` is a small multilayer perceptron.
//! The original system uses PyCox; this crate replaces it with a
//! from-scratch, dependency-free MLP:
//!
//! - [`Mlp`]: dense layers with configurable activations, manual
//!   backpropagation;
//! - [`Adam`]: the Adam optimizer over the flattened parameter vector;
//! - [`Gradients`]: a parameter-shaped gradient accumulator so callers can
//!   average gradients over mini-batches or custom losses (the Cox partial
//!   likelihood couples multiple forward passes in one loss term).
//!
//! Everything is deterministic given a seed.

pub mod adam;
pub mod fastmath;
pub mod mlp;
pub mod scaler;

pub use adam::Adam;
pub use mlp::{Activation, BackwardScratch, ForwardCache, Gradients, Mlp};
pub use scaler::StandardScaler;

//! A fixed, inlinable `tanh` kernel for the network hot loops.
//!
//! `Activation::Tanh` used to call the system libm, which on this class
//! of host (glibc x86-64 with FMA) dispatches `tanh` to the classic
//! fdlibm routine and its inner `expm1` — via an ifunc — to glibc's
//! FMA-contracted multiarch build of the same Sun fdlibm code. This
//! module ports that exact pair operation for operation (fused
//! multiply-adds exactly where the shipped binary fuses them, high-word
//! exponent arithmetic and all), so every result is bit-identical to
//! what `f64::tanh` produced before, while the call — billions per
//! `repro table3`, one per hidden neuron per forward pass — now inlines.
//! Two things make the port faster than the call it replaces:
//!
//! * the `|x| < 1` / `|x| >= 1` split is evaluated branchlessly (one
//!   `expm1` on a selected argument, one division on a selected
//!   numerator), removing a data-dependent branch that mispredicts on
//!   roughly half of real pre-activation streams;
//! * inlining lets the CPU overlap the long-latency FP divisions of
//!   *neighbouring* activations, which a dynamic call boundary forbids.
//!
//! Beyond speed, a vendored kernel pins the workspace's seeded
//! determinism to one fixed implementation instead of whatever libm the
//! host ships; `crates/nn/tests/tanh_exactness.rs` verifies bit-equality
//! against the system libm across every branch of the algorithm.
//! (`f64::mul_add` is a correctly-rounded fused multiply-add on every
//! target — hardware FMA or libm fallback — so the port's results do not
//! depend on build flags.)

// fdlibm constants, spelled as bit patterns so no decimal-literal
// round-trip is involved; each one was read back out of the shipped
// libm.so.6's constant pool.
const LN2_HI: f64 = f64::from_bits(0x3FE6_2E42_FEE0_0000); // high part of ln 2
const LN2_LO: f64 = f64::from_bits(0x3DEA_39EF_3579_3C76); // ln 2 − LN2_HI
const INVLN2: f64 = f64::from_bits(0x3FF7_1547_652B_82FE); // 1 / ln 2
const O_THRESHOLD: f64 = f64::from_bits(0x4086_2E42_FEFA_39EF); // exp overflow bound
const HUGE: f64 = 1.0e300;
const TINY: f64 = 1.0e-300;
// Minimax polynomial coefficients for the expm1 primary range.
const Q1: f64 = f64::from_bits(0xBFA1_1111_1111_10F4);
const Q2: f64 = f64::from_bits(0x3F5A_01A0_19FE_5585);
const Q3: f64 = f64::from_bits(0xBF14_CE19_9EAA_DBB7);
const Q4: f64 = f64::from_bits(0x3ED0_CFCA_86E6_5239);
const Q5: f64 = f64::from_bits(0xBE8A_FDB7_6E09_C32D);

/// Adds `k` to the biased exponent in `y`'s high word — fdlibm's
/// `GET_HIGH_WORD`/`SET_HIGH_WORD(high + (k << 20))` scaling idiom,
/// which is *not* the same rounding path as multiplying by 2ᵏ.
#[inline]
fn add_to_exponent(y: f64, k: i32) -> f64 {
    f64::from_bits(y.to_bits().wrapping_add((k as i64 as u64) << 52))
}

/// Bit-exact port of the shipped `expm1(x)` = `eˣ − 1`.
///
/// Matches glibc's FMA multiarch `__expm1` result bit for bit;
/// floating-point *flags* (inexact/underflow) and `errno` on overflow
/// are not replicated.
#[inline(always)]
#[allow(clippy::many_single_char_names)]
fn expm1(x: f64) -> f64 {
    let bits = x.to_bits();
    let xsb = ((bits >> 32) as u32) & 0x8000_0000; // sign bit
    let hx = ((bits >> 32) as u32) & 0x7fff_ffff; // high word of |x|
    let mut x = x;

    // Filter out huge and non-finite arguments.
    if hx >= 0x4043_687A {
        // |x| >= 56 ln 2
        if hx >= 0x4086_2E42 {
            // |x| >= 709.78...
            if hx >= 0x7ff0_0000 {
                let low = bits as u32;
                if ((hx & 0xf_ffff) | low) != 0 {
                    return x + x; // NaN
                }
                return if xsb == 0 { x } else { -1.0 }; // expm1(±inf)
            }
            if x > O_THRESHOLD {
                return HUGE * HUGE; // overflow
            }
        }
        if xsb != 0 {
            return TINY - 1.0; // x < −56 ln 2: expm1(x) = −1
        }
    }

    // Argument reduction: x = k·ln2 + r with |r| <= 0.5 ln 2; `c` is the
    // rounding error of the reduction, folded back in below.
    let c: f64;
    let k: i32;
    if hx > 0x3FD6_2E42 {
        // |x| > 0.5 ln 2
        let (hi, lo);
        if hx < 0x3FF0_A2B2 {
            // and |x| < 1.5 ln 2
            if xsb == 0 {
                hi = x - LN2_HI;
                lo = LN2_LO;
                k = 1;
            } else {
                hi = x + LN2_HI;
                lo = -LN2_LO;
                k = -1;
            }
        } else {
            let kf = 0.5f64.copysign(x) + INVLN2 * x;
            k = kf as i32; // C `(int)` truncation
            let t = k as f64;
            hi = t.mul_add(-LN2_HI, x); // fused, as shipped
            lo = t * LN2_LO;
        }
        x = hi - lo;
        c = (hi - x) - lo;
    } else if hx < 0x3c90_0000 {
        // |x| < 2⁻⁵⁴: expm1(x) rounds to x (fdlibm only adds FP flags).
        return x;
    } else {
        k = 0;
        c = 0.0;
    }

    // Primary range: rational approximation of expm1(x)/x, in the exact
    // fuse-and-evaluate order of the shipped binary.
    let hfx = 0.5 * x;
    let hxs = x * hfx;
    let p32 = Q3.mul_add(hxs, Q2);
    let p54 = Q5.mul_add(hxs, Q4);
    let h2 = hxs * hxs;
    let p1 = hxs.mul_add(Q1, 1.0);
    let h4 = h2 * h2;
    let r1 = h4.mul_add(p54, h2.mul_add(p32, p1));
    let t = hfx.mul_add(-r1, 3.0);
    let d = t.mul_add(-x, 6.0);
    let e = ((r1 - t) / d) * hxs;
    if k == 0 {
        return x - e.mul_add(x, -hxs); // c is 0
    }
    let e = (e - c).mul_add(x, -c) - hxs;
    if k == -1 {
        return (x - e).mul_add(0.5, -0.5);
    }
    if k == 1 {
        return if x < -0.25 {
            (e - (x + 0.5)) * -2.0
        } else {
            (x - e).mul_add(2.0, 1.0)
        };
    }
    if k <= -2 || k > 56 {
        // Sufficient to return exp(x) − 1.
        let y = 1.0 - (e - x);
        return add_to_exponent(y, k) - 1.0;
    }
    if k < 20 {
        let t = f64::from_bits((0x3ff0_0000_u64 - (0x20_0000_u64 >> k)) << 32); // 1 − 2⁻ᵏ
        let y = t - (e - x);
        return add_to_exponent(y, k);
    }
    let t = f64::from_bits(((0x3ff - i64::from(k)) as u64) << 52); // 2⁻ᵏ
    let y = (x - (e + t)) + 1.0;
    add_to_exponent(y, k)
}

/// Branchless select; compiles to a conditional move / vector blend.
#[inline(always)]
fn sel(c: bool, a: f64, b: f64) -> f64 {
    if c {
        a
    } else {
        b
    }
}

/// Integer twin of [`sel`].
#[inline(always)]
fn seli(c: bool, a: i32, b: i32) -> i32 {
    if c {
        a
    } else {
        b
    }
}

/// Fully branchless `tanh` lane, valid only for `2⁻⁵⁵ <= |x| < 19`.
///
/// Evaluates *every* branch of the fdlibm algorithm — both reduction
/// forms and all four `expm1` tail cases — and picks per value with
/// [`sel`], so each input flows through exactly the operations its
/// scalar branch would have performed and the result stays bit-exact.
/// The domain bound keeps the excluded paths (tiny, saturated, `k > 56`,
/// non-finite) unreachable; [`tanh_slice`] falls back to [`tanh`]
/// outside it. Straight-line code with no data-dependent branches means
/// no `k`-dependent mispredictions and a body the SLP vectorizer can
/// run four lanes wide.
#[inline(always)]
#[allow(clippy::many_single_char_names)]
fn tanh_lane(x: f64) -> f64 {
    let sign_bit = x.to_bits() & 0x8000_0000_0000_0000;
    let ax = f64::from_bits(x.to_bits() & 0x7fff_ffff_ffff_ffff);
    let big = ax >= 1.0;
    let two_ax = 2.0 * ax;
    // expm1 argument: +2|x| when |x| >= 1, else −2|x| (exact sign flip).
    let a = sel(big, two_ax, -two_ax);
    let sbit = if big { 0u64 } else { 1u64 << 63 }; // sign of `a`

    // ---- expm1(a): argument reduction a = k·ln2 + r ----
    // High-word threshold compares, rewritten as full-width float
    // compares against the smallest magnitude whose high word passes
    // (the low word of the original compare is ignored, so the two
    // predicates agree on every input).
    const THR_REDUCE: f64 = f64::from_bits(0x3FD6_2E43_0000_0000); // hx > 0x3fd62E42
    const THR_15LN2: f64 = f64::from_bits(0x3FF0_A2B2_0000_0000); // hx < 0x3FF0A2B2
    let reduce = two_ax >= THR_REDUCE;
    let k1case = two_ax < THR_15LN2;
    // |a| in (0.5 ln2, 1.5 ln2): k = ±1 with exact hi/lo constants.
    let hi1 = a - f64::from_bits(LN2_HI.to_bits() | sbit);
    let lo1 = f64::from_bits(LN2_LO.to_bits() | sbit);
    let k1 = seli(sbit == 0, 1, -1);
    // General case: k = trunc(±0.5 + a/ln2).
    let kf = f64::from_bits(0.5_f64.to_bits() | sbit) + INVLN2 * a;
    let kg = kf as i32; // C `(int)` truncation
    let tg = f64::from(kg);
    let hi_g = tg.mul_add(-LN2_HI, a);
    let lo_g = tg * LN2_LO;
    let kk = seli(k1case, k1, kg);
    let hi = sel(k1case, hi1, hi_g);
    let lo = sel(k1case, lo1, lo_g);
    let xr_r = hi - lo;
    let c_r = (hi - xr_r) - lo;
    let xr = sel(reduce, xr_r, a);
    let c = sel(reduce, c_r, 0.0);
    let k = seli(reduce, kk, 0);

    // ---- primary-range polynomial, identical to [`expm1`] ----
    let hfx = 0.5 * xr;
    let hxs = xr * hfx;
    let p32 = Q3.mul_add(hxs, Q2);
    let p54 = Q5.mul_add(hxs, Q4);
    let h2 = hxs * hxs;
    let p1 = hxs.mul_add(Q1, 1.0);
    let h4 = h2 * h2;
    let r1 = h4.mul_add(p54, h2.mul_add(p32, p1));
    let t = hfx.mul_add(-r1, 3.0);
    let d = t.mul_add(-xr, 6.0);
    let e = ((r1 - t) / d) * hxs;

    // ---- every tail, then one select chain on k ----
    let r_k0 = xr - e.mul_add(xr, -hxs);
    let e2 = (e - c).mul_add(xr, -c) - hxs;
    let r_km1 = (xr - e2).mul_add(0.5, -0.5);
    let r_k1 = sel(
        xr < -0.25,
        (e2 - (xr + 0.5)) * -2.0,
        (xr - e2).mul_add(2.0, 1.0),
    );
    let r_neg = add_to_exponent(1.0 - (e2 - xr), k) - 1.0; // k <= −2
    let ku = k.clamp(0, 63) as u32; // keep the discarded-lane shifts in range
    let t20 = f64::from_bits((0x3ff0_0000_u64 - (0x20_0000_u64 >> ku)) << 32); // 1 − 2⁻ᵏ
    let r_lt20 = add_to_exponent(t20 - (e2 - xr), k);
    let t56 = f64::from_bits(((0x3ff_i64 - i64::from(k)) as u64) << 52); // 2⁻ᵏ
    let r_ge20 = add_to_exponent((xr - (e2 + t56)) + 1.0, k);
    let r_gen = sel(k < 20, r_lt20, r_ge20);
    let em1 = sel(
        k == 0,
        r_k0,
        sel(
            k == 1,
            r_k1,
            sel(k == -1, r_km1, sel(k <= -2, r_neg, r_gen)),
        ),
    );

    // ---- tanh from expm1, then restore the argument's sign ----
    let q = sel(big, 2.0, -em1) / (em1 + 2.0);
    let z = sel(big, 1.0 - q, q);
    f64::from_bits(z.to_bits() ^ sign_bit)
}

/// Applies [`tanh`] to every element in place, four lanes at a time.
///
/// Chunks whose four values all fall in `2⁻⁵⁵ <= |x| < 19` run through
/// the branchless [`tanh_lane`]; anything else (zeros, saturated,
/// non-finite — rare in practice) falls back to the scalar [`tanh`].
/// Both paths are bit-exact, so the output never depends on how values
/// happen to be grouped.
pub fn tanh_slice(values: &mut [f64]) {
    let mut chunks = values.chunks_exact_mut(4);
    for chunk in &mut chunks {
        let mut in_domain = true;
        for &v in chunk.iter() {
            let ix = ((v.to_bits() >> 32) as u32) & 0x7fff_ffff;
            in_domain &= (0x3c80_0000..0x4033_0000).contains(&ix);
        }
        if in_domain {
            for v in chunk.iter_mut() {
                *v = tanh_lane(*v);
            }
        } else {
            for v in chunk.iter_mut() {
                *v = tanh(*v);
            }
        }
    }
    for v in chunks.into_remainder() {
        *v = tanh(*v);
    }
}

/// Bit-exact fdlibm `tanh(x)` — a drop-in for [`f64::tanh`] that inlines
/// into hot loops.
///
/// # Examples
///
/// ```
/// let x = 0.731_f64;
/// assert_eq!(anubis_nn::fastmath::tanh(x).to_bits(), x.tanh().to_bits());
/// ```
#[inline]
pub fn tanh(x: f64) -> f64 {
    let jx = (x.to_bits() >> 32) as u32 as i32; // sign-carrying high word
    let ix = jx & 0x7fff_ffff;

    if ix >= 0x7ff0_0000 {
        // tanh(±inf) = ±1, tanh(NaN) = NaN.
        return if jx >= 0 {
            1.0 / x + 1.0
        } else {
            1.0 / x - 1.0
        };
    }

    let z = if ix < 0x4036_0000 {
        // |x| < 22
        if ix < 0x3c80_0000 {
            // |x| < 2⁻⁵⁵: tanh(x) rounds to x·(1+x).
            return x * (1.0 + x);
        }
        // One expm1 + one division cover both halves of the range; the
        // selects compile to conditional moves instead of a data-dependent
        // branch. Each select picks exactly the operand fdlibm's
        // corresponding branch would use, so results stay bit-identical.
        let big = ix >= 0x3ff0_0000; // |x| >= 1
        let two_ax = 2.0 * x.abs();
        let t = expm1(if big { two_ax } else { -two_ax });
        let q = if big { 2.0 } else { -t } / (t + 2.0);
        if big {
            1.0 - q
        } else {
            q
        }
    } else {
        1.0 - TINY // |x| >= 22: rounds to 1
    };
    if jx >= 0 {
        z
    } else {
        -z
    }
}

//! ANUBIS: proactive validation for cloud AI infrastructure.
//!
//! This crate ties the whole system together, mirroring the paper's
//! architecture (Figure 7): the [`Anubis`] facade owns a
//! [`anubis_validator::Validator`] (criteria + defect filtering) and an
//! optional [`anubis_selector::Selector`] (incident-probability model +
//! Algorithm 1 subset selection), tracks per-node statuses, reacts to
//! orchestration [`events`], and feeds newly-found defects back into the
//! coverage history so the system "evolves in tandem with the latest node
//! statuses".
//!
//! Sub-crates are re-exported under short names so downstream users need a
//! single dependency:
//!
//! ```
//! use anubis::hwsim::{NodeId, NodeSim, NodeSpec};
//!
//! let node = NodeSim::new(NodeId(0), NodeSpec::a100_8x(), 7);
//! assert_eq!(node.spec().gpus, 8);
//! ```

pub mod driver;
pub mod events;
pub mod repair;
pub mod system;

pub use driver::{FleetDriver, StepReport};
pub use events::{EventOutcome, ValidationEvent};
pub use repair::RepairSystem;
pub use system::{Anubis, AnubisConfig};

pub use anubis_benchsuite as benchsuite;
pub use anubis_cluster as cluster;
pub use anubis_hwsim as hwsim;
pub use anubis_metrics as metrics;
pub use anubis_netsim as netsim;
pub use anubis_nn as nn;
pub use anubis_selector as selector;
pub use anubis_traces as traces;
pub use anubis_validator as validator;
pub use anubis_workload as workload;

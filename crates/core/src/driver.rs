//! Fleet driver: the Figure 7 runtime loop as a reusable object.
//!
//! Wires together hardware wear ([`anubis_hwsim::WearModel`]), the ANUBIS
//! system (criteria + optional Selector), and the repair/hot-buffer flow:
//! advance time → wear injects gray failures → a regular check validates →
//! caught defects are swapped against the hot buffer → repaired nodes
//! restock it. The `gray_failure_lifecycle` example is a thin shell over
//! this type.

use crate::events::ValidationEvent;
use crate::repair::RepairSystem;
use crate::system::Anubis;
use anubis_benchsuite::SuiteError;
use anubis_hwsim::{NodeSim, WearModel};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// One driver step's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct StepReport {
    /// Simulated hours advanced.
    pub hours: f64,
    /// Wear onsets injected during the step.
    pub onsets: usize,
    /// Defects caught by the regular check.
    pub caught: usize,
    /// Caught defects that could not be swapped (hot buffer empty).
    pub unswapped: usize,
    /// Nodes in the gray state after the step (hidden damage only).
    pub gray_nodes: usize,
    /// Nodes with benchmark-visible damage after the step.
    pub visible_nodes: usize,
    /// Fleet nodes the lifecycle machine holds in `Quarantined` after the
    /// step: confirmed defective but unswapped (hot buffer empty), still
    /// occupying their slot.
    pub quarantined_nodes: usize,
}

/// Drives a fleet through wear / check / swap cycles.
pub struct FleetDriver {
    system: Anubis,
    repair: RepairSystem,
    nodes: Vec<NodeSim>,
    members: Vec<usize>,
    wear: WearModel,
    rng: ChaCha8Rng,
    clock_hours: f64,
}

impl FleetDriver {
    /// Creates a driver and bootstraps criteria with a build-out run over
    /// the (healthy) fleet.
    ///
    /// `spares` seeds the hot buffer.
    pub fn new(
        mut system: Anubis,
        mut nodes: Vec<NodeSim>,
        spares: impl IntoIterator<Item = NodeSim>,
        wear: WearModel,
        seed: u64,
    ) -> Result<Self, SuiteError> {
        let members: Vec<usize> = (0..nodes.len()).collect();
        system.handle_event(&ValidationEvent::NodesAdded, &mut nodes, &members, None)?;
        let mut repair = RepairSystem::new();
        repair.stock_hot_buffer(spares);
        Ok(Self {
            system,
            repair,
            nodes,
            members,
            wear,
            rng: ChaCha8Rng::seed_from_u64(seed),
            clock_hours: 0.0,
        })
    }

    /// Simulated wall clock.
    pub fn clock_hours(&self) -> f64 {
        self.clock_hours
    }

    /// The managed fleet.
    pub fn nodes(&self) -> &[NodeSim] {
        &self.nodes
    }

    /// The ANUBIS system (statuses, criteria, coverage).
    pub fn system(&self) -> &Anubis {
        &self.system
    }

    /// The repair system.
    pub fn repair(&self) -> &RepairSystem {
        &self.repair
    }

    /// Advances `hours` of stressed operation, runs a regular check, and
    /// swaps every caught defect against the hot buffer (repaired nodes
    /// return to it at the end of the step).
    pub fn step(&mut self, hours: f64) -> Result<StepReport, SuiteError> {
        anubis_obs::set_time(self.clock_hours);
        let _span = anubis_obs::span!("driver.step");
        let mut onsets = 0usize;
        for node in &mut self.nodes {
            onsets += self.wear.advance(node, hours, &mut self.rng).len();
        }
        self.system.advance_hours(hours);
        self.clock_hours += hours;
        anubis_obs::set_time(self.clock_hours);

        let outcome = self.system.handle_event(
            &ValidationEvent::RegularCheck {
                horizon_hours: hours.max(1.0),
            },
            &mut self.nodes,
            &self.members,
            None,
        )?;
        let caught = outcome.defective.len();
        let mut unswapped = 0usize;
        for id in &outcome.defective {
            let idx = self
                .nodes
                .iter()
                .position(|n| n.id() == *id)
                .expect("flagged node is in the fleet");
            if self.repair.hot_buffer_len() > 0 {
                let replacement = self
                    .repair
                    .swap(self.nodes[idx].clone())
                    .expect("buffer checked non-empty");
                self.nodes[idx] = replacement;
            } else {
                // No spare: the defective node stays in service (capacity
                // over quality — the operator's only option).
                unswapped += 1;
            }
        }
        self.repair.repair_cycle();
        anubis_obs::counter!("driver.onsets", onsets as i64);
        anubis_obs::counter!("driver.caught", caught as i64);
        anubis_obs::counter!("driver.unswapped", unswapped as i64);

        Ok(StepReport {
            hours,
            onsets,
            caught,
            unswapped,
            gray_nodes: self
                .nodes
                .iter()
                .filter(|n| n.has_hidden_damage() && !n.has_detectable_defect())
                .count(),
            visible_nodes: self
                .nodes
                .iter()
                .filter(|n| n.has_detectable_defect())
                .count(),
            quarantined_nodes: self
                .nodes
                .iter()
                .filter(|n| self.system.lifecycle_of(n.id()).state().is_quarantined())
                .count(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::AnubisConfig;
    use anubis_hwsim::{NodeId, NodeSpec};

    fn driver(fleet: u32, spares: u32, wear_scale: f64) -> FleetDriver {
        let nodes: Vec<NodeSim> = (0..fleet)
            .map(|i| NodeSim::new(NodeId(i), NodeSpec::a100_8x(), 21))
            .collect();
        let spares =
            (1000..1000 + spares).map(|i| NodeSim::new(NodeId(i), NodeSpec::a100_8x(), 21));
        FleetDriver::new(
            Anubis::new(AnubisConfig::default()),
            nodes,
            spares,
            WearModel::azure_like().scaled(wear_scale),
            9,
        )
        .expect("bootstrap")
    }

    #[test]
    fn fleet_size_is_invariant_under_swaps() {
        let mut driver = driver(10, 6, 1.0);
        for _ in 0..4 {
            let report = driver.step(200.0).unwrap();
            assert_eq!(driver.nodes().len(), 10);
            assert!(report.gray_nodes + report.visible_nodes <= 10);
        }
        assert_eq!(driver.clock_hours(), 800.0);
    }

    #[test]
    fn checks_catch_accumulated_wear() {
        let mut driver = driver(12, 12, 2.0);
        let mut caught = 0usize;
        let mut onsets = 0usize;
        for _ in 0..5 {
            let report = driver.step(300.0).unwrap();
            caught += report.caught;
            onsets += report.onsets;
        }
        assert!(onsets > 10, "wear must fire: {onsets}");
        assert!(caught > 0, "checks must catch some of it");
    }

    #[test]
    fn empty_hot_buffer_reports_unswapped() {
        let mut driver = driver(10, 0, 4.0);
        let mut unswapped = 0usize;
        let mut last_quarantined = 0usize;
        for _ in 0..4 {
            let report = driver.step(400.0).unwrap();
            unswapped += report.unswapped;
            last_quarantined = report.quarantined_nodes;
        }
        assert!(unswapped > 0, "no spares: swaps must fail");
        // Without spares nothing ever reaches the repair loop and the
        // defective nodes stay in service.
        assert_eq!(driver.repair().hot_buffer_len(), 0);
        assert!(driver.nodes().iter().any(NodeSim::has_detectable_defect));
        // The lifecycle machine keeps them quarantined while they serve.
        assert!(last_quarantined > 0, "unswapped defects stay quarantined");
    }
}

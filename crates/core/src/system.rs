//! The top-level ANUBIS system object.

use crate::events::{EventOutcome, ValidationEvent};
use anubis_benchsuite::{BenchmarkId, SuiteError};
use anubis_hwsim::{NodeId, NodeSim};
use anubis_lifecycle::{LifecycleEvent, NodeLifecycle};
use anubis_netsim::FatTree;
use anubis_selector::{NodeStatus, Selector};
use anubis_validator::{Validator, ValidatorConfig};
use std::collections::BTreeMap;

/// System configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnubisConfig {
    /// Validator configuration (similarity threshold, centroid method).
    pub validator: ValidatorConfig,
}

/// The ANUBIS proactive-validation system (paper Figure 7).
///
/// Owns the Validator and the (optional, because it requires a fitted
/// survival model) Selector, tracks node statuses, and handles
/// orchestration events. Newly-found defects feed the Selector's coverage
/// history, closing the paper's evolution loop.
///
/// # Examples
///
/// ```
/// use anubis::{Anubis, AnubisConfig, ValidationEvent};
/// use anubis::hwsim::{NodeId, NodeSim, NodeSpec};
///
/// let mut system = Anubis::new(AnubisConfig::default());
/// let mut nodes: Vec<NodeSim> =
///     (0..8).map(|i| NodeSim::new(NodeId(i), NodeSpec::a100_8x(), 3)).collect();
/// let members: Vec<usize> = (0..8).collect();
/// // Cluster build-out: full-set run + criteria learning.
/// let outcome = system
///     .handle_event(&ValidationEvent::NodesAdded, &mut nodes, &members, None)
///     .unwrap();
/// assert!(outcome.validated);
/// ```
#[derive(Debug)]
pub struct Anubis {
    validator: Validator,
    selector: Option<Selector>,
    statuses: BTreeMap<NodeId, NodeStatus>,
    lives: BTreeMap<NodeId, NodeLifecycle>,
    defect_counter: u64,
}

impl Anubis {
    /// Creates the system with no criteria learned and no Selector.
    pub fn new(config: AnubisConfig) -> Self {
        Self {
            validator: Validator::new(config.validator),
            selector: None,
            statuses: BTreeMap::new(),
            lives: BTreeMap::new(),
            defect_counter: 0,
        }
    }

    /// Installs a Selector (survival model + coverage history).
    pub fn with_selector(mut self, selector: Selector) -> Self {
        self.selector = Some(selector);
        self
    }

    /// The Validator.
    pub fn validator(&self) -> &Validator {
        &self.validator
    }

    /// The Selector, if installed.
    pub fn selector(&self) -> Option<&Selector> {
        self.selector.as_ref()
    }

    /// Current status of a node (fresh if never seen).
    pub fn status_of(&self, node: NodeId) -> NodeStatus {
        self.statuses.get(&node).copied().unwrap_or_default()
    }

    /// Current lifecycle of a node (healthy if never seen). All changes
    /// route through the `anubis-lifecycle` transition function.
    pub fn lifecycle_of(&self, node: NodeId) -> NodeLifecycle {
        self.lives.get(&node).copied().unwrap_or_default()
    }

    /// Applies a lifecycle event to a node when it is legal in the node's
    /// current state, returning whether it was applied.
    ///
    /// Silently gated rather than asserted: the managed fleet can
    /// legitimately hold nodes whose machine state rejects an event — an
    /// unswapped defective node stays `Quarantined` through repeated
    /// re-validation (capacity over quality), and a re-stocked spare stays
    /// `Quarantined` until a validation pass re-certifies it.
    fn drive(&mut self, node: NodeId, event: LifecycleEvent) -> bool {
        let life = self.lives.entry(node).or_default();
        if life.can(event) {
            life.apply(event).is_ok()
        } else {
            false
        }
    }

    /// Records validation verdicts for every node in `ids`: flagged nodes
    /// are quarantined; the rest leave validation healthy. A `Quarantined`
    /// node that passes is re-certified (repair completed, returned to
    /// service).
    fn record_verdicts(&mut self, ids: &[NodeId], flagged: &BTreeMap<NodeId, Vec<BenchmarkId>>) {
        for &id in ids {
            if flagged.contains_key(&id) {
                self.drive(id, LifecycleEvent::DefectConfirmed);
            } else if self.lifecycle_of(id).state().is_quarantined() {
                self.drive(id, LifecycleEvent::RepairCompleted);
                self.drive(id, LifecycleEvent::ReturnedToService);
            } else {
                self.drive(id, LifecycleEvent::ValidationPassed);
            }
        }
    }

    /// Advances every tracked node's clocks (call as simulated time
    /// passes).
    pub fn advance_hours(&mut self, hours: f64) {
        for status in self.statuses.values_mut() {
            status.advance(hours);
        }
    }

    /// Handles an orchestration event over the given node set.
    ///
    /// `members[i]` is the fabric index of `nodes[i]`; `fabric` is needed
    /// only when multi-node benchmarks end up selected.
    pub fn handle_event(
        &mut self,
        event: &ValidationEvent,
        nodes: &mut [NodeSim],
        members: &[usize],
        fabric: Option<&FatTree>,
    ) -> Result<EventOutcome, SuiteError> {
        for node in nodes.iter() {
            self.statuses.entry(node.id()).or_default();
            self.lives.entry(node.id()).or_default();
        }
        let ids: Vec<NodeId> = nodes.iter().map(NodeSim::id).collect();
        let _span = anubis_obs::span!(match event {
            ValidationEvent::NodesAdded => "event.nodes_added",
            ValidationEvent::JobAllocation { .. } => "event.job_allocation",
            ValidationEvent::RegularCheck { .. } => "event.regular_check",
            ValidationEvent::IncidentReported { .. } => "event.incident_reported",
        });
        match event {
            ValidationEvent::NodesAdded => {
                // Quality gate: full set, criteria learned from this run.
                // Build-out treats every unknown node as having crossed the
                // risk threshold — it must prove itself before serving.
                for &id in &ids {
                    self.drive(id, LifecycleEvent::RiskCrossed);
                    self.drive(id, LifecycleEvent::ValidationStarted);
                }
                let single = BenchmarkId::single_node();
                let set: Vec<BenchmarkId> = if fabric.is_some() {
                    BenchmarkId::ALL.to_vec()
                } else {
                    single
                };
                let report = self.validator.validate(&set, nodes, members, fabric)?;
                // Bootstrap: (re)learn criteria on the gathered data, then
                // re-filter with the fresh criteria.
                self.validator
                    .learn_criteria(&report.data)
                    .map_err(SuiteError::Metrics)?;
                let outcome = self.validator.filter_data(&report.data);
                self.record_defects(&outcome.flagged);
                self.record_verdicts(&ids, &outcome.flagged);
                Ok(EventOutcome {
                    validated: true,
                    benchmarks: set,
                    defective: outcome.defective_nodes(),
                    duration_minutes: report.duration_minutes,
                })
            }
            ValidationEvent::JobAllocation { horizon_hours }
            | ValidationEvent::RegularCheck { horizon_hours } => {
                let statuses: Vec<NodeStatus> =
                    nodes.iter().map(|n| self.status_of(n.id())).collect();
                let subset = match &self.selector {
                    // An empty subset stands for "risk below p₀ / nothing
                    // worth running": the event becomes a skip below.
                    Some(selector) => match selector.assess(&statuses, *horizon_hours) {
                        LifecycleEvent::RiskCleared => Vec::new(),
                        _ => selector.select(&statuses, *horizon_hours),
                    },
                    // Without a Selector, fall back to the full set (the
                    // conservative quality-gate behaviour).
                    None => BenchmarkId::ALL.to_vec(),
                };
                if subset.is_empty() {
                    // Release any node still flagged from an earlier
                    // crossing; the model refresh lowered its risk.
                    for &id in &ids {
                        self.drive(id, LifecycleEvent::RiskCleared);
                    }
                    return Ok(EventOutcome::skipped());
                }
                let subset: Vec<BenchmarkId> = subset
                    .into_iter()
                    .filter(|b| {
                        fabric.is_some() || b.spec().phase == anubis_benchsuite::Phase::SingleNode
                    })
                    .collect();
                for &id in &ids {
                    self.drive(id, LifecycleEvent::RiskCrossed);
                    self.drive(id, LifecycleEvent::ValidationStarted);
                }
                let report = self.validator.validate(&subset, nodes, members, fabric)?;
                self.record_defects(&report.flagged);
                self.record_verdicts(&ids, &report.flagged);
                Ok(EventOutcome {
                    validated: true,
                    benchmarks: subset,
                    defective: report.defective_nodes(),
                    duration_minutes: report.duration_minutes,
                })
            }
            ValidationEvent::IncidentReported { node, category } => {
                if let Some(status) = self.statuses.get_mut(node) {
                    status.record_incident(*category);
                }
                // Cordoned node: validate it alone with a Selector subset
                // (or the full single-node set without one).
                let Some(idx) = nodes.iter().position(|n| n.id() == *node) else {
                    return Ok(EventOutcome::skipped());
                };
                let status = self.status_of(*node);
                let subset: Vec<BenchmarkId> = match &self.selector {
                    Some(selector) => selector.select_from(
                        std::slice::from_ref(&status),
                        24.0,
                        &BenchmarkId::single_node(),
                    ),
                    None => BenchmarkId::single_node(),
                };
                if subset.is_empty() {
                    return Ok(EventOutcome::skipped());
                }
                // The incident is this node's threshold crossing.
                self.drive(*node, LifecycleEvent::RiskCrossed);
                self.drive(*node, LifecycleEvent::ValidationStarted);
                let node_slice = &mut nodes[idx..=idx];
                let report =
                    self.validator
                        .validate(&subset, node_slice, &members[idx..=idx], None)?;
                self.record_defects(&report.flagged);
                self.record_verdicts(std::slice::from_ref(node), &report.flagged);
                Ok(EventOutcome {
                    validated: true,
                    benchmarks: subset,
                    defective: report.defective_nodes(),
                    duration_minutes: report.duration_minutes,
                })
            }
        }
    }

    /// Feeds found defects into the Selector's coverage history (the
    /// evolution loop of Figure 7).
    fn record_defects(&mut self, flagged: &BTreeMap<NodeId, Vec<BenchmarkId>>) {
        anubis_obs::counter!("system.defective_nodes", flagged.len() as i64);
        let Some(selector) = &mut self.selector else {
            return;
        };
        for benches in flagged.values() {
            let defect_id = self.defect_counter;
            self.defect_counter += 1;
            for &bench in benches {
                selector.coverage_mut().record(bench, defect_id);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anubis_hwsim::fault::IncidentCategory;
    use anubis_hwsim::{FaultKind, NodeSpec};
    use anubis_selector::{CoverageTable, ExponentialModel, SelectorConfig};

    fn fleet(n: u32, seed: u64) -> (Vec<NodeSim>, Vec<usize>) {
        let nodes: Vec<NodeSim> = (0..n)
            .map(|i| NodeSim::new(NodeId(i), NodeSpec::a100_8x(), seed))
            .collect();
        let members = (0..n as usize).collect();
        (nodes, members)
    }

    fn risky_selector() -> Selector {
        let mut coverage = CoverageTable::new();
        for d in 0..10u64 {
            coverage.record(BenchmarkId::GpuGemmFp16, d);
        }
        for d in 5..12u64 {
            coverage.record(BenchmarkId::IbHcaLoopback, d);
        }
        Selector::new(
            Box::new(ExponentialModel { rate: 0.02 }),
            coverage,
            SelectorConfig::default(),
        )
    }

    #[test]
    fn nodes_added_learns_criteria_and_flags_defects() {
        let mut system = Anubis::new(AnubisConfig::default());
        let (mut nodes, members) = fleet(12, 5);
        nodes[3].inject_fault(FaultKind::PcieDowngrade { severity: 0.5 });
        let outcome = system
            .handle_event(&ValidationEvent::NodesAdded, &mut nodes, &members, None)
            .unwrap();
        assert!(outcome.validated);
        assert!(
            outcome.defective.contains(&NodeId(3)),
            "{:?}",
            outcome.defective
        );
        assert!(!system.validator().filter().is_empty(), "criteria learned");
    }

    #[test]
    fn job_allocation_without_selector_runs_full_single_node_set() {
        let mut system = Anubis::new(AnubisConfig::default());
        let (mut nodes, members) = fleet(6, 7);
        // Bootstrap criteria first.
        system
            .handle_event(&ValidationEvent::NodesAdded, &mut nodes, &members, None)
            .unwrap();
        let outcome = system
            .handle_event(
                &ValidationEvent::JobAllocation {
                    horizon_hours: 24.0,
                },
                &mut nodes,
                &members,
                None,
            )
            .unwrap();
        assert!(outcome.validated);
        assert!(outcome.benchmarks.len() >= BenchmarkId::single_node().len());
    }

    #[test]
    fn selector_skips_then_selects_subset() {
        let (mut nodes, members) = fleet(4, 9);
        // A selector with a negligible incident rate: validation skipped.
        let safe = Selector::new(
            Box::new(ExponentialModel { rate: 1e-9 }),
            CoverageTable::new(),
            SelectorConfig::default(),
        );
        let mut system = Anubis::new(AnubisConfig::default()).with_selector(safe);
        system
            .handle_event(&ValidationEvent::NodesAdded, &mut nodes, &members, None)
            .unwrap();
        let outcome = system
            .handle_event(
                &ValidationEvent::JobAllocation {
                    horizon_hours: 24.0,
                },
                &mut nodes,
                &members,
                None,
            )
            .unwrap();
        assert!(!outcome.validated, "low risk skips validation");

        // A risky selector picks a small subset instead.
        let mut system = Anubis::new(AnubisConfig::default()).with_selector(risky_selector());
        system
            .handle_event(&ValidationEvent::NodesAdded, &mut nodes, &members, None)
            .unwrap();
        let outcome = system
            .handle_event(
                &ValidationEvent::JobAllocation {
                    horizon_hours: 24.0,
                },
                &mut nodes,
                &members,
                None,
            )
            .unwrap();
        assert!(outcome.validated);
        assert!(
            outcome.benchmarks.len() < BenchmarkId::ALL.len() / 2,
            "subset, not the full suite: {:?}",
            outcome.benchmarks
        );
    }

    #[test]
    fn incident_updates_status_and_validates_the_node() {
        let (mut nodes, members) = fleet(4, 11);
        let mut system = Anubis::new(AnubisConfig::default()).with_selector(risky_selector());
        system
            .handle_event(&ValidationEvent::NodesAdded, &mut nodes, &members, None)
            .unwrap();
        nodes[2].inject_fault(FaultKind::GpuComputeDegraded { severity: 0.4 });
        let outcome = system
            .handle_event(
                &ValidationEvent::IncidentReported {
                    node: NodeId(2),
                    category: IncidentCategory::GpuCompute,
                },
                &mut nodes,
                &members,
                None,
            )
            .unwrap();
        assert_eq!(system.status_of(NodeId(2)).incident_count, 1);
        assert!(outcome.validated);
        assert_eq!(outcome.defective, vec![NodeId(2)]);
    }

    #[test]
    fn defects_feed_coverage_history() {
        let (mut nodes, members) = fleet(8, 13);
        let mut system = Anubis::new(AnubisConfig::default()).with_selector(risky_selector());
        system
            .handle_event(&ValidationEvent::NodesAdded, &mut nodes, &members, None)
            .unwrap();
        let before = system.selector().unwrap().coverage().total_defects();
        nodes[1].inject_fault(FaultKind::DiskSlow { severity: 0.6 });
        system
            .handle_event(
                &ValidationEvent::RegularCheck {
                    horizon_hours: 48.0,
                },
                &mut nodes,
                &members,
                None,
            )
            .unwrap();
        let after = system.selector().unwrap().coverage().total_defects();
        // The disk defect is only recorded if the selected subset included
        // a disk benchmark; at minimum the counter never decreases.
        assert!(after >= before);
    }

    #[test]
    fn lifecycle_tracks_build_out_verdicts() {
        let mut system = Anubis::new(AnubisConfig::default());
        let (mut nodes, members) = fleet(12, 5);
        nodes[3].inject_fault(FaultKind::PcieDowngrade { severity: 0.5 });
        system
            .handle_event(&ValidationEvent::NodesAdded, &mut nodes, &members, None)
            .unwrap();
        assert!(system.lifecycle_of(NodeId(3)).state().is_quarantined());
        assert!(system.lifecycle_of(NodeId(0)).state().is_healthy());
        assert!(
            system.lifecycle_of(NodeId(99)).state().is_healthy(),
            "unknown node is fresh"
        );
    }

    #[test]
    fn passing_validation_recertifies_a_quarantined_node() {
        let mut system = Anubis::new(AnubisConfig::default());
        let (mut nodes, members) = fleet(8, 5);
        nodes[2].inject_fault(FaultKind::GpuComputeDegraded { severity: 0.4 });
        system
            .handle_event(&ValidationEvent::NodesAdded, &mut nodes, &members, None)
            .unwrap();
        assert!(system.lifecycle_of(NodeId(2)).state().is_quarantined());
        // Hardware replaced behind the same id; the next check passes and
        // re-certifies the node (repair completed, returned to service).
        nodes[2] = NodeSim::new(NodeId(2), NodeSpec::a100_8x(), 5);
        let outcome = system
            .handle_event(
                &ValidationEvent::RegularCheck {
                    horizon_hours: 24.0,
                },
                &mut nodes,
                &members,
                None,
            )
            .unwrap();
        assert!(outcome.validated);
        assert!(!outcome.defective.contains(&NodeId(2)), "{outcome:?}");
        assert!(system.lifecycle_of(NodeId(2)).state().is_healthy());
    }

    #[test]
    fn incident_quarantines_the_defective_node() {
        let (mut nodes, members) = fleet(4, 11);
        let mut system = Anubis::new(AnubisConfig::default()).with_selector(risky_selector());
        system
            .handle_event(&ValidationEvent::NodesAdded, &mut nodes, &members, None)
            .unwrap();
        nodes[2].inject_fault(FaultKind::GpuComputeDegraded { severity: 0.4 });
        system
            .handle_event(
                &ValidationEvent::IncidentReported {
                    node: NodeId(2),
                    category: IncidentCategory::GpuCompute,
                },
                &mut nodes,
                &members,
                None,
            )
            .unwrap();
        assert!(system.lifecycle_of(NodeId(2)).state().is_quarantined());
        assert!(system.lifecycle_of(NodeId(0)).state().is_healthy());
    }

    #[test]
    fn skipped_check_clears_suspects() {
        let (mut nodes, members) = fleet(4, 9);
        let safe = Selector::new(
            Box::new(ExponentialModel { rate: 1e-9 }),
            CoverageTable::new(),
            SelectorConfig::default(),
        );
        let mut system = Anubis::new(AnubisConfig::default()).with_selector(safe);
        system
            .handle_event(&ValidationEvent::NodesAdded, &mut nodes, &members, None)
            .unwrap();
        let outcome = system
            .handle_event(
                &ValidationEvent::JobAllocation {
                    horizon_hours: 24.0,
                },
                &mut nodes,
                &members,
                None,
            )
            .unwrap();
        assert!(!outcome.validated);
        for i in 0..4 {
            assert!(system.lifecycle_of(NodeId(i)).state().is_healthy());
        }
    }

    #[test]
    fn incident_for_unknown_node_is_skipped() {
        let (mut nodes, members) = fleet(2, 15);
        let mut system = Anubis::new(AnubisConfig::default());
        let outcome = system
            .handle_event(
                &ValidationEvent::IncidentReported {
                    node: NodeId(99),
                    category: IncidentCategory::Disk,
                },
                &mut nodes,
                &members,
                None,
            )
            .unwrap();
        assert!(!outcome.validated);
    }

    #[test]
    fn advance_hours_moves_clocks() {
        let (mut nodes, members) = fleet(2, 17);
        let mut system = Anubis::new(AnubisConfig::default());
        system
            .handle_event(&ValidationEvent::NodesAdded, &mut nodes, &members, None)
            .unwrap();
        system.advance_hours(10.0);
        assert_eq!(system.status_of(NodeId(0)).uptime_hours, 10.0);
        assert_eq!(
            system.status_of(NodeId(42)).uptime_hours,
            0.0,
            "unknown node is fresh"
        );
    }
}

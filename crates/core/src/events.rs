//! Orchestration events that trigger validation (paper Section 3.1).

use anubis_benchsuite::BenchmarkId;
use anubis_hwsim::fault::IncidentCategory;
use anubis_hwsim::NodeId;

/// Events the orchestration system feeds into ANUBIS.
#[derive(Debug, Clone, PartialEq)]
pub enum ValidationEvent {
    /// New nodes joined the cluster, or cluster-wide firmware/software was
    /// upgraded: the quality gate runs the full benchmark set and
    /// (re)learns criteria.
    NodesAdded,
    /// A customer job is about to be allocated to specific nodes for an
    /// expected duration.
    JobAllocation {
        /// Expected job duration in hours (the Selector's horizon).
        horizon_hours: f64,
    },
    /// A customer reported an incident; the node is cordoned and must be
    /// validated before returning to service.
    IncidentReported {
        /// The implicated node.
        node: NodeId,
        /// The incident's root-cause category (from the ticket).
        category: IncidentCategory,
    },
    /// Periodic risk check over existing nodes.
    RegularCheck {
        /// Risk horizon in hours.
        horizon_hours: f64,
    },
}

/// Outcome of handling one event.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EventOutcome {
    /// Whether any benchmarks were executed.
    pub validated: bool,
    /// The benchmarks that ran (empty when validation was skipped).
    pub benchmarks: Vec<BenchmarkId>,
    /// Nodes filtered as defective.
    pub defective: Vec<NodeId>,
    /// Validation wall-clock cost in minutes.
    pub duration_minutes: f64,
}

impl EventOutcome {
    /// An outcome representing a skipped validation.
    pub fn skipped() -> Self {
        Self::default()
    }

    /// Whether any node was flagged.
    pub fn found_defects(&self) -> bool {
        !self.defective.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skipped_outcome_is_empty() {
        let outcome = EventOutcome::skipped();
        assert!(!outcome.validated);
        assert!(!outcome.found_defects());
        assert_eq!(outcome.duration_minutes, 0.0);
    }

    #[test]
    fn events_are_comparable() {
        assert_eq!(
            ValidationEvent::JobAllocation {
                horizon_hours: 24.0
            },
            ValidationEvent::JobAllocation {
                horizon_hours: 24.0
            }
        );
        assert_ne!(
            ValidationEvent::NodesAdded,
            ValidationEvent::RegularCheck {
                horizon_hours: 24.0
            }
        );
    }
}

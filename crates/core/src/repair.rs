//! The repair system: out-for-repair buffer and hot buffer.
//!
//! The paper's runtime keeps a *defective buffer* of nodes out for repair
//! (OFR) and a *hot buffer* of repaired healthy nodes; defective nodes are
//! swapped against healthy ones so the orchestration system keeps its
//! capacity.

use anubis_hwsim::{NodeId, NodeSim};

/// Hot-buffer / out-for-repair bookkeeping.
#[derive(Debug, Clone, Default)]
pub struct RepairSystem {
    hot_buffer: Vec<NodeSim>,
    out_for_repair: Vec<NodeSim>,
}

impl RepairSystem {
    /// An empty repair system.
    pub fn new() -> Self {
        Self::default()
    }

    /// Seeds the hot buffer with healthy spare nodes.
    pub fn stock_hot_buffer(&mut self, nodes: impl IntoIterator<Item = NodeSim>) {
        self.hot_buffer.extend(nodes);
    }

    /// Healthy spares currently available.
    pub fn hot_buffer_len(&self) -> usize {
        self.hot_buffer.len()
    }

    /// Nodes currently out for repair.
    pub fn out_for_repair_len(&self) -> usize {
        self.out_for_repair.len()
    }

    /// Swaps a defective node against a hot spare, if one is available.
    ///
    /// The defective node moves to the OFR buffer and the spare is
    /// returned for immediate use. `None` means the hot buffer is empty
    /// and the defective node stays out (capacity shrinks).
    pub fn swap(&mut self, defective: NodeSim) -> Option<NodeSim> {
        let replacement = self.hot_buffer.pop();
        self.out_for_repair.push(defective);
        replacement
    }

    /// Runs a repair cycle: every OFR node is fully repaired (hardware
    /// replaced / redundancy restored) and returns to the hot buffer.
    ///
    /// Returns the ids of the nodes repaired.
    pub fn repair_cycle(&mut self) -> Vec<NodeId> {
        let mut repaired = Vec::with_capacity(self.out_for_repair.len());
        for mut node in self.out_for_repair.drain(..) {
            node.repair_all();
            repaired.push(node.id());
            self.hot_buffer.push(node);
        }
        repaired
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anubis_hwsim::{FaultKind, NodeSpec};

    fn node(id: u32) -> NodeSim {
        NodeSim::new(NodeId(id), NodeSpec::a100_8x(), 1)
    }

    #[test]
    fn swap_returns_spare_and_queues_defective() {
        let mut repair = RepairSystem::new();
        repair.stock_hot_buffer([node(100), node(101)]);
        let mut defective = node(0);
        defective.inject_fault(FaultKind::DiskSlow { severity: 0.5 });
        let spare = repair.swap(defective).expect("spare available");
        assert!(!spare.has_detectable_defect());
        assert_eq!(repair.hot_buffer_len(), 1);
        assert_eq!(repair.out_for_repair_len(), 1);
    }

    #[test]
    fn swap_without_spares_shrinks_capacity() {
        let mut repair = RepairSystem::new();
        assert!(repair.swap(node(0)).is_none());
        assert_eq!(repair.out_for_repair_len(), 1);
    }

    #[test]
    fn repair_cycle_restores_and_restocks() {
        let mut repair = RepairSystem::new();
        let mut defective = node(7);
        defective.inject_fault(FaultKind::GpuComputeDegraded { severity: 0.4 });
        repair.swap(defective);
        let repaired = repair.repair_cycle();
        assert_eq!(repaired, vec![NodeId(7)]);
        assert_eq!(repair.out_for_repair_len(), 0);
        assert_eq!(repair.hot_buffer_len(), 1);
        // The node comes back healthy and reusable.
        let back = repair.swap(node(8)).unwrap();
        assert_eq!(back.id(), NodeId(7));
        assert!(!back.has_detectable_defect());
    }
}

//! Property-based tests for the deterministic executor: every entry point
//! must return bit-identical results at any thread count, because the
//! chunk decomposition and all reductions are fixed independently of how
//! many workers happen to run them.

use proptest::prelude::*;

/// Strategy: vectors of floats spanning enough magnitude that any
/// reassociation of a sum would change the result bitwise.
fn ill_conditioned() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(
        prop_oneof![-1.0e12f64..1.0e12, -1.0f64..1.0, Just(0.0f64),],
        0..96,
    )
}

proptest! {
    #[test]
    fn map_chunks_is_thread_count_invariant(
        items in ill_conditioned(),
        chunk_size in 1usize..16,
    ) {
        // Chunk sums are order-sensitive; identical outputs across thread
        // counts prove the decomposition and assembly ignore parallelism.
        let run = |threads: usize| {
            anubis_parallel::map_chunks(&items, chunk_size, threads, |idx, chunk| {
                (idx, chunk.iter().fold(0.0f64, |a, &v| a / 3.0 + v))
            })
        };
        let reference = run(1);
        prop_assert_eq!(&reference, &run(2));
        prop_assert_eq!(&reference, &run(8));
        prop_assert_eq!(reference.len(), items.len().div_ceil(chunk_size.max(1)));
    }

    #[test]
    fn map_chunks_mut_is_thread_count_invariant(
        items in ill_conditioned(),
        chunk_size in 1usize..16,
    ) {
        let run = |threads: usize| {
            let mut data = items.clone();
            let sums = anubis_parallel::map_chunks_mut(&mut data, chunk_size, threads, |_, chunk| {
                for v in chunk.iter_mut() {
                    *v = v.sin() * 1.0e3;
                }
                chunk.iter().sum::<f64>()
            });
            (data, sums)
        };
        let reference = run(1);
        prop_assert_eq!(&reference, &run(2));
        prop_assert_eq!(&reference, &run(8));
    }

    #[test]
    fn map_items_and_indexed_match_sequential(items in ill_conditioned()) {
        let expected: Vec<f64> = items.iter().map(|v| v * 1.5 - 2.0).collect();
        for threads in [1usize, 2, 8] {
            let by_item = anubis_parallel::map_items(&items, threads, |v| v * 1.5 - 2.0);
            let by_index = anubis_parallel::map_indexed(items.len(), threads, |i| {
                items[i] * 1.5 - 2.0
            });
            prop_assert_eq!(&by_item, &expected);
            prop_assert_eq!(&by_index, &expected);
        }
    }

    #[test]
    fn reduce_chunks_is_thread_count_invariant(
        items in ill_conditioned(),
        chunk_size in 1usize..16,
    ) {
        // The fold runs on the caller thread in chunk order, so even a
        // non-associative reduction is reproducible.
        let run = |threads: usize| {
            anubis_parallel::reduce_chunks(
                &items,
                chunk_size,
                threads,
                |_, chunk| chunk.iter().fold(0.0f64, |a, &v| a / 7.0 + v),
                |a, b| a / 2.0 + b,
            )
        };
        let reference = run(1);
        prop_assert_eq!(reference, run(2));
        prop_assert_eq!(reference, run(8));
        prop_assert_eq!(reference.is_none(), items.is_empty());
    }
}

//! Deterministic data-parallel executor.
//!
//! Every workspace simulation promises bit-for-bit reproducible output
//! (see `anubis-xtask lint`), so parallelism must never change results —
//! only wall-clock time. This crate is the one place allowed to touch
//! `std::thread` (the `raw-threading` lint forbids it elsewhere) and it
//! enforces a simple contract that makes thread count unobservable:
//!
//! 1. **Fixed-size chunking.** Work is split into chunks whose size is a
//!    caller-chosen constant, *independent of the thread count*. A chunk
//!    is the unit of scheduling; the computation inside a chunk runs
//!    sequentially, exactly as the single-threaded code would.
//! 2. **Slot-indexed outputs.** Each chunk's result is tagged with its
//!    chunk index and placed into a pre-determined output slot, so the
//!    assembled output is ordered by chunk, never by completion time.
//! 3. **Chunk-ordered reduction.** Folds over chunk results happen on the
//!    caller's thread, in ascending chunk order. Floating-point
//!    accumulation therefore associates identically at any thread count.
//!
//! Under this contract `threads = 1`, `threads = 8`, and
//! `ANUBIS_THREADS=3` all produce bit-identical results; the property
//! tests in `tests/proptests.rs` pin that down. The same invariance
//! extends to `anubis-obs` traces: work dispatched through the executor
//! never records (worker threads have no recorder enabled, and the inline
//! single-worker path holds an `anubis_obs::suppress` guard), so a trace's
//! bytes are independent of the thread count too.
//!
//! # Examples
//!
//! ```
//! use anubis_parallel::{map_chunks, reduce_chunks};
//!
//! let xs: Vec<f64> = (0..1000).map(f64::from).collect();
//! // Chunked sum: same chunking (and therefore the same result) at any
//! // thread count.
//! let seq = reduce_chunks(&xs, 64, 1, |_, c| c.iter().sum::<f64>(), |a, b| a + b);
//! let par = reduce_chunks(&xs, 64, 8, |_, c| c.iter().sum::<f64>(), |a, b| a + b);
//! assert_eq!(seq, par);
//! let squares = map_chunks(&xs, 128, 4, |_, c| c.iter().map(|x| x * x).sum::<f64>());
//! assert_eq!(squares.len(), 8); // ceil(1000 / 128) chunk results, in chunk order
//! ```

use std::thread;

/// Hard cap on worker threads; fleets of simulated nodes parallelize well
/// past this point but the build machines rarely have more cores.
const MAX_THREADS: usize = 16;

/// Environment variable overriding the worker-thread count (`0` or unset
/// selects the hardware default). Results never depend on this value.
pub const THREADS_ENV: &str = "ANUBIS_THREADS";

/// Environment variable toggling the incremental statistical paths —
/// CELF benchmark selection, the criteria cache, and the Cox-Time
/// warm-start split. Unset or any value other than `0` enables them; set
/// to `0` to force the batch reference paths. Both settings produce
/// bit-identical outputs (the incremental paths are proven equivalent);
/// only wall-clock time changes, exactly like [`THREADS_ENV`].
pub const INCREMENTAL_ENV: &str = "ANUBIS_INCREMENTAL";

/// Whether the incremental statistical paths are enabled (the default).
/// See [`INCREMENTAL_ENV`].
pub fn incremental_enabled() -> bool {
    anubis_config::enabled(INCREMENTAL_ENV, true)
}

/// Workloads at or below this many chunks bypass the thread pool: on a
/// 1–2 chunk workload the spawn/join overhead costs more than the
/// parallelism buys (the fig4 run-time regression recorded in
/// BENCH_2.json). Routing them through the inline path changes nothing
/// but wall-clock time — the executor is bit-deterministic at any worker
/// count, including 1.
pub const SERIAL_CHUNK_CUTOFF: usize = 2;

/// Worker-thread count from [`THREADS_ENV`], defaulting to the machine's
/// available parallelism, clamped to `1..=16`.
///
/// Only wall-clock time depends on this; every executor entry point is
/// bit-deterministic across thread counts.
pub fn auto_threads() -> usize {
    let configured = anubis_config::parsed::<usize>(THREADS_ENV).unwrap_or(0);
    let threads = if configured == 0 {
        thread::available_parallelism().map_or(1, usize::from)
    } else {
        configured
    };
    threads.clamp(1, MAX_THREADS)
}

/// Resolves a caller-supplied thread count: `0` means [`auto_threads`],
/// anything else is clamped to `1..=16`.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        auto_threads()
    } else {
        threads.clamp(1, MAX_THREADS)
    }
}

/// Runs `tasks` on up to `threads` workers and returns their results in
/// task order. Tasks are assigned to workers cyclically (task `i` to
/// worker `i mod workers`) — a static schedule, so no ordering decision
/// ever depends on timing.
fn execute<T, R, F>(tasks: Vec<T>, threads: usize, run: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let workers = resolve_threads(threads).min(tasks.len());
    if workers <= 1 {
        // The inline path must look exactly like worker execution to the
        // observability layer: `anubis-obs` recording is thread-local and
        // only ever enabled on the coordinating thread, so worker threads
        // never record — suppressing here keeps trace content independent
        // of the resolved worker count.
        let _quiet = anubis_obs::suppress();
        return tasks
            .into_iter()
            .enumerate()
            .map(|(i, t)| run(i, t))
            .collect();
    }
    let mut buckets: Vec<Vec<(usize, T)>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, task) in tasks.into_iter().enumerate() {
        buckets[i % workers].push((i, task));
    }
    let run = &run;
    let mut tagged: Vec<(usize, R)> = Vec::new();
    let mut panic_payload = None;
    thread::scope(|scope| {
        let handles: Vec<_> = buckets
            .into_iter()
            .map(|bucket| {
                scope.spawn(move || {
                    bucket
                        .into_iter()
                        .map(|(i, task)| (i, run(i, task)))
                        .collect::<Vec<(usize, R)>>()
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(pairs) => tagged.extend(pairs),
                Err(payload) => panic_payload = Some(payload),
            }
        }
    });
    if let Some(payload) = panic_payload {
        // Re-raise the worker's panic on the caller thread (the scope has
        // already joined every other worker).
        std::panic::resume_unwind(payload);
    }
    tagged.sort_unstable_by_key(|(i, _)| *i);
    tagged.into_iter().map(|(_, r)| r).collect()
}

/// Splits `items` into chunks of `chunk_size` (the last may be shorter),
/// maps each chunk with `f(chunk_index, chunk)` on up to `threads`
/// workers, and returns the per-chunk results **in chunk order**.
///
/// The chunking is a pure function of `items.len()` and `chunk_size`, so
/// the output is bit-identical at any thread count.
pub fn map_chunks<T, R, F>(items: &[T], chunk_size: usize, threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    let tasks: Vec<&[T]> = items.chunks(chunk_size.max(1)).collect();
    let threads = serial_below_cutoff(tasks.len(), threads);
    execute(tasks, threads, f)
}

/// Forces the inline path for tiny chunked workloads (see
/// [`SERIAL_CHUNK_CUTOFF`]).
fn serial_below_cutoff(chunk_count: usize, threads: usize) -> usize {
    if chunk_count <= SERIAL_CHUNK_CUTOFF {
        1
    } else {
        threads
    }
}

/// [`map_chunks`] over mutable chunks: each worker owns a disjoint
/// `&mut [T]` window, so per-item state (e.g. a simulated node's RNG)
/// advances exactly as in a sequential loop.
pub fn map_chunks_mut<T, R, F>(items: &mut [T], chunk_size: usize, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut [T]) -> R + Sync,
{
    let tasks: Vec<&mut [T]> = items.chunks_mut(chunk_size.max(1)).collect();
    let threads = serial_below_cutoff(tasks.len(), threads);
    execute(tasks, threads, f)
}

/// Maps `f` over every item, returning results in item order.
///
/// Scheduling granularity is one item; use [`map_chunks`] when per-item
/// work is small enough that scheduling would dominate.
pub fn map_items<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let tasks: Vec<&T> = items.iter().collect();
    execute(tasks, threads, |_, item| f(item))
}

/// Maps `f` over the index range `0..n`, returning results in index
/// order. The indexed twin of [`map_items`] for work that constructs its
/// own inputs (e.g. one simulated node per fleet slot).
pub fn map_indexed<R, F>(n: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let tasks: Vec<usize> = (0..n).collect();
    execute(tasks, threads, |_, i| f(i))
}

/// Chunk-parallel reduction: maps each fixed-size chunk with `map`, then
/// folds the per-chunk accumulators **in ascending chunk order** on the
/// calling thread. Returns `None` for empty input.
///
/// Because the chunk boundaries and the fold order are both independent
/// of the thread count, floating-point reductions associate identically
/// at any thread count.
pub fn reduce_chunks<T, A, M, F>(
    items: &[T],
    chunk_size: usize,
    threads: usize,
    map: M,
    fold: F,
) -> Option<A>
where
    T: Sync,
    A: Send,
    M: Fn(usize, &[T]) -> A + Sync,
    F: Fn(A, A) -> A,
{
    let partials = map_chunks(items, chunk_size, threads, map);
    partials.into_iter().reduce(fold)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_chunks_preserves_order() {
        let items: Vec<u64> = (0..103).collect();
        for threads in [1, 2, 5, 16] {
            let sums = map_chunks(&items, 10, threads, |idx, chunk| {
                (idx, chunk.iter().sum::<u64>())
            });
            assert_eq!(sums.len(), 11);
            for (slot, (idx, _)) in sums.iter().enumerate() {
                assert_eq!(slot, *idx);
            }
            assert_eq!(sums.iter().map(|(_, s)| s).sum::<u64>(), 103 * 102 / 2);
        }
    }

    #[test]
    fn map_chunks_mut_covers_every_item_once() {
        for threads in [1, 3, 8] {
            let mut items = vec![0u32; 57];
            map_chunks_mut(&mut items, 5, threads, |_, chunk| {
                for item in chunk.iter_mut() {
                    *item += 1;
                }
            });
            assert!(items.iter().all(|&v| v == 1));
        }
    }

    #[test]
    fn map_items_and_indexed_agree() {
        let items: Vec<usize> = (0..37).collect();
        let a = map_items(&items, 4, |&i| i * i);
        let b = map_indexed(items.len(), 4, |i| i * i);
        assert_eq!(a, b);
    }

    #[test]
    fn reduce_chunks_is_thread_count_invariant() {
        // A deliberately ill-conditioned float sum: any re-association
        // across chunk boundaries would change the bits.
        let items: Vec<f64> = (0..1000)
            .map(|i| if i % 2 == 0 { 1e16 } else { 3.33333 })
            .collect();
        let reference = reduce_chunks(&items, 7, 1, |_, c| c.iter().sum::<f64>(), |a, b| a + b);
        for threads in [2, 3, 8, 16] {
            let parallel = reduce_chunks(
                &items,
                7,
                threads,
                |_, c| c.iter().sum::<f64>(),
                |a, b| a + b,
            );
            assert_eq!(reference, parallel);
        }
        assert_eq!(
            reduce_chunks::<f64, f64, _, _>(&[], 4, 2, |_, c| c.iter().sum(), |a, b| a + b),
            None
        );
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let empty: Vec<u8> = Vec::new();
        assert!(map_chunks(&empty, 4, 8, |_, c| c.len()).is_empty());
        assert_eq!(map_chunks(&[1u8], 0, 8, |_, c| c.len()), vec![1]);
        assert!(map_indexed(0, 8, |i| i).is_empty());
    }

    #[test]
    fn resolve_threads_clamps() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
        assert_eq!(resolve_threads(10_000), MAX_THREADS);
        assert!(auto_threads() >= 1 && auto_threads() <= MAX_THREADS);
    }

    #[test]
    fn tiny_workloads_match_at_any_thread_count() {
        // At or below the serial cutoff the pool is bypassed; results are
        // identical either way (the contract), so only pin the behavior.
        let items: Vec<f64> = (0..7).map(f64::from).collect();
        let reference = map_chunks(&items, 4, 1, |_, c| c.iter().sum::<f64>());
        for threads in [2, 8, 16] {
            assert_eq!(
                reference,
                map_chunks(&items, 4, threads, |_, c| c.iter().sum::<f64>())
            );
        }
        assert_eq!(serial_below_cutoff(SERIAL_CHUNK_CUTOFF, 8), 1);
        assert_eq!(serial_below_cutoff(SERIAL_CHUNK_CUTOFF + 1, 8), 8);
    }

    #[test]
    fn incremental_toggle_reads_env() {
        // No other test in this binary touches the variable, so the
        // process-global mutation cannot race.
        std::env::remove_var(INCREMENTAL_ENV);
        assert!(incremental_enabled());
        std::env::set_var(INCREMENTAL_ENV, "0");
        assert!(!incremental_enabled());
        std::env::set_var(INCREMENTAL_ENV, "1");
        assert!(incremental_enabled());
        std::env::remove_var(INCREMENTAL_ENV);
    }

    #[test]
    fn worker_panic_propagates() {
        let caught = std::panic::catch_unwind(|| {
            map_indexed(16, 4, |i| {
                assert!(i != 9, "boom");
                i
            })
        });
        assert!(caught.is_err());
    }
}

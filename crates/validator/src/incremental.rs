//! Incremental criteria calculation.
//!
//! Algorithm 2 is dominated by the pairwise similarity matrix: `O(n²)`
//! CDF-space integrations per benchmark, re-run from scratch every
//! learning cycle even though a cycle typically appends a handful of new
//! samples to an append-only result store. [`CriteriaCache`] keeps the
//! matrix (and the per-sample ECDFs) alive across cycles and only
//! computes the rows touched by new samples — `O(new × total)`
//! integrations — then re-runs the (cheap) clustering loop over the
//! cached matrix.
//!
//! Every matrix entry is an independent integration of the same two
//! ECDFs the batch path would integrate, and the clustering loop is a
//! pure function of the matrix, so [`CriteriaCache::result`] is
//! bit-identical to [`calculate_criteria`] over the same sample list.
//! That equivalence is asserted by `incremental_matches_batch_bitwise`
//! below and by the cross-crate property tests.

use crate::criteria::{cluster_from_matrix, CentroidMethod, CriteriaResult};
use anubis_metrics::{extend_similarity_matrix, Ecdf, MetricsError, Sample};

/// Cached state for incremental Algorithm 2 runs over one benchmark's
/// growing sample list.
///
/// # Examples
///
/// ```
/// use anubis_metrics::Sample;
/// use anubis_validator::{calculate_criteria, CentroidMethod, CriteriaCache};
///
/// let samples: Vec<Sample> =
///     (0..6).map(|i| Sample::scalar(100.0 + i as f64 * 0.01).unwrap()).collect();
/// let mut cache = CriteriaCache::new(0.95, CentroidMethod::Medoid).unwrap();
/// cache.extend(&samples[..4]);
/// cache.extend(&samples[4..]); // only the 9 new pairs are integrated
/// let batch = calculate_criteria(&samples, 0.95, CentroidMethod::Medoid).unwrap();
/// assert_eq!(cache.result().unwrap(), batch);
/// ```
#[derive(Debug, Clone)]
pub struct CriteriaCache {
    alpha: f64,
    method: CentroidMethod,
    samples: Vec<Sample>,
    ecdfs: Vec<Ecdf>,
    matrix: Vec<Vec<f64>>,
}

impl CriteriaCache {
    /// Creates an empty cache. Fails on a similarity threshold outside
    /// `[0, 1)`, mirroring [`calculate_criteria`]'s validation.
    pub fn new(alpha: f64, method: CentroidMethod) -> Result<Self, MetricsError> {
        if !(0.0..1.0).contains(&alpha) {
            return Err(MetricsError::InvalidParameter {
                name: "alpha",
                message: format!("similarity threshold {alpha} must be in [0, 1)"),
            });
        }
        Ok(Self {
            alpha,
            method,
            samples: Vec::new(),
            ecdfs: Vec::new(),
            matrix: Vec::new(),
        })
    }

    /// Number of samples absorbed so far.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no sample has been absorbed yet.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Absorbs new samples, extending the cached similarity matrix with
    /// only the rows the newcomers touch.
    pub fn extend(&mut self, new_samples: &[Sample]) {
        if new_samples.is_empty() {
            return;
        }
        let _span = anubis_obs::span!("validator.criteria_cache.extend");
        let old = self.samples.len();
        self.samples.extend_from_slice(new_samples);
        extend_similarity_matrix(&mut self.matrix, &mut self.ecdfs, &self.samples, 0);
        let total = self.samples.len();
        anubis_obs::counter!(
            "validator.criteria_cache.pairs_integrated",
            (total * (total - 1) / 2 - old.saturating_sub(1) * old / 2) as i64
        );
    }

    /// Runs the Algorithm 2 clustering loop over the cached matrix.
    /// Bit-identical to [`calculate_criteria`] over the same sample list.
    pub fn result(&self) -> Result<CriteriaResult, MetricsError> {
        if self.samples.is_empty() {
            return Err(MetricsError::EmptySample);
        }
        let _span = anubis_obs::span!("validator.criteria_cache.result");
        let ecdfs: &[Ecdf] = match self.method {
            // The batch path builds ECDFs only for the distribution-mean
            // method; the medoid loop reads the matrix alone.
            CentroidMethod::Medoid => &[],
            CentroidMethod::DistributionMean => &self.ecdfs,
        };
        cluster_from_matrix(&self.samples, &self.matrix, ecdfs, self.alpha, self.method)
    }

    /// The samples absorbed so far, in absorption order.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// The similarity threshold this cache clusters against.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The centroid method this cache clusters with.
    pub fn method(&self) -> CentroidMethod {
        self.method
    }

    /// Reconciles the cache with a rolling window of samples. While the
    /// window only grows (the cached samples are still a prefix) the new
    /// suffix is absorbed incrementally; once the window evicted its head
    /// the cached rows are invalid and the matrix is rebuilt.
    pub fn sync<'a>(&mut self, window: impl ExactSizeIterator<Item = &'a Sample> + Clone) {
        let prefix_intact = window.len() >= self.samples.len()
            && self.samples.iter().zip(window.clone()).all(|(a, b)| a == b);
        if !prefix_intact {
            anubis_obs::counter!("validator.criteria_cache.rebuilds", 1);
            self.samples.clear();
            self.ecdfs.clear();
            self.matrix.clear();
        }
        for sample in window.skip(self.samples.len()) {
            self.extend(std::slice::from_ref(sample));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::criteria::calculate_criteria;

    fn series(base: f64, n: usize) -> Sample {
        Sample::new(
            (0..n)
                .map(|i| base + (i % 7) as f64 * base * 0.001)
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn incremental_matches_batch_bitwise() {
        let mut samples: Vec<Sample> = (0..12)
            .map(|i| series(100.0 + i as f64 * 0.01, 64))
            .collect();
        samples.push(series(70.0, 64));
        samples.push(series(55.0, 64));
        for method in [CentroidMethod::Medoid, CentroidMethod::DistributionMean] {
            let batch = calculate_criteria(&samples, 0.95, method).unwrap();
            for split in [0usize, 1, 7, 13, 14] {
                let mut cache = CriteriaCache::new(0.95, method).unwrap();
                cache.extend(&samples[..split]);
                cache.extend(&samples[split..]);
                assert_eq!(cache.result().unwrap(), batch, "split {split}");
            }
            // One-at-a-time absorption, the steady-state control loop shape.
            let mut cache = CriteriaCache::new(0.95, method).unwrap();
            for s in &samples {
                cache.extend(std::slice::from_ref(s));
            }
            assert_eq!(cache.result().unwrap(), batch);
        }
    }

    #[test]
    fn empty_cache_errors_like_batch() {
        let cache = CriteriaCache::new(0.95, CentroidMethod::Medoid).unwrap();
        assert!(cache.result().is_err());
        assert!(calculate_criteria(&[], 0.95, CentroidMethod::Medoid).is_err());
    }

    #[test]
    fn validates_alpha_like_batch() {
        assert!(CriteriaCache::new(1.0, CentroidMethod::Medoid).is_err());
        assert!(CriteriaCache::new(-0.1, CentroidMethod::Medoid).is_err());
    }
}

//! Adaptive benchmark-parameter search (paper Appendix B).
//!
//! End-to-end benchmarks only need a stable measurement window, not a full
//! training run. The search (i) finds the cycle period of the step series
//! by classical seasonal decomposition, (ii) walks cycles from the start
//! until enough consecutive cycles are self-similar within α, and (iii)
//! across nodes, keeps the candidate window that maximizes the average
//! pairwise similarity.

use anubis_metrics::{mean_pairwise_similarity, seasonal, MetricsError, Sample};
use std::fmt;

/// Number of consecutive self-similar cycles required for a stable window.
const STABLE_CYCLES: usize = 3;
/// Fallback cycle length when the series shows no credible period.
const FALLBACK_PERIOD: usize = 16;

/// A warmup/measurement split of a step series.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub struct StepWindow {
    /// Steps to discard before measuring.
    pub warmup: usize,
    /// Steps to measure.
    pub measure: usize,
}

impl StepWindow {
    /// Total steps the tuned benchmark must run.
    pub fn total(&self) -> usize {
        self.warmup + self.measure
    }

    /// Applies the window to a series, producing the measured sub-sample.
    pub fn apply(&self, series: &[f64]) -> Result<Sample, MetricsError> {
        let end = self.total().min(series.len());
        if self.warmup >= end {
            return Err(MetricsError::InsufficientData {
                required: self.total(),
                actual: series.len(),
            });
        }
        Sample::new(series[self.warmup..end].to_vec())
    }

    /// Fraction of `baseline_steps` the tuned window saves.
    pub fn time_saving(&self, baseline_steps: usize) -> f64 {
        if baseline_steps == 0 {
            return 0.0;
        }
        (1.0 - self.total() as f64 / baseline_steps as f64).max(0.0)
    }
}

/// Errors from the parameter search.
#[derive(Debug, Clone, PartialEq)]
pub enum TuningError {
    /// The series is too short to contain two cycles.
    TooShort {
        /// Length of the supplied series.
        length: usize,
    },
    /// No run of consecutive self-similar cycles exists within α.
    NoStableWindow,
    /// Underlying statistics error.
    Metrics(MetricsError),
}

impl fmt::Display for TuningError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::TooShort { length } => write!(f, "series of {length} steps is too short"),
            Self::NoStableWindow => write!(f, "no stable measurement window found"),
            Self::Metrics(e) => write!(f, "statistics error: {e}"),
        }
    }
}

impl std::error::Error for TuningError {}

impl From<MetricsError> for TuningError {
    fn from(e: MetricsError) -> Self {
        Self::Metrics(e)
    }
}

/// Searches one node's step series for the earliest stable window.
///
/// # Examples
///
/// ```
/// use anubis_validator::search_step_window;
///
/// // Warmup transient then a clean 8-step cycle.
/// let series: Vec<f64> = (0..160)
///     .map(|i| {
///         let warm = 1.0 + 2.0 * (-(i as f64) / 5.0).exp();
///         (100.0 + (i % 8) as f64) / warm
///     })
///     .collect();
/// let window = search_step_window(&series, 0.95).unwrap();
/// assert!(window.total() < 160, "tuned window saves steps");
/// ```
pub fn search_step_window(series: &[f64], alpha: f64) -> Result<StepWindow, TuningError> {
    if series.len() < 2 * FALLBACK_PERIOD {
        return Err(TuningError::TooShort {
            length: series.len(),
        });
    }
    let period = seasonal::detect_period(series, series.len() / 4, 0.2)
        .unwrap_or(FALLBACK_PERIOD)
        .max(2);
    let cycles: Vec<Sample> = series
        .chunks_exact(period)
        .map(|chunk| Sample::new(chunk.to_vec()))
        .collect::<Result<_, _>>()?;
    if cycles.len() < STABLE_CYCLES {
        return Err(TuningError::TooShort {
            length: series.len(),
        });
    }
    for start in 0..=cycles.len() - STABLE_CYCLES {
        let window = &cycles[start..start + STABLE_CYCLES];
        if mean_pairwise_similarity(window) > alpha {
            return Ok(StepWindow {
                warmup: start * period,
                measure: STABLE_CYCLES * period,
            });
        }
    }
    Err(TuningError::NoStableWindow)
}

/// Picks the best shared window across nodes (the Appendix B final step).
///
/// Computes each node's candidate window, evaluates every candidate on all
/// nodes (trimming each series and measuring cross-node repeatability), and
/// returns the candidate with the highest repeatability together with that
/// score.
pub fn select_shared_window(
    series_per_node: &[Vec<f64>],
    alpha: f64,
) -> Result<(StepWindow, f64), TuningError> {
    if series_per_node.is_empty() {
        return Err(TuningError::TooShort { length: 0 });
    }
    let mut candidates: Vec<StepWindow> = Vec::new();
    for series in series_per_node {
        if let Ok(window) = search_step_window(series, alpha) {
            if !candidates.contains(&window) {
                candidates.push(window);
            }
        }
    }
    if candidates.is_empty() {
        return Err(TuningError::NoStableWindow);
    }
    let mut best: Option<(StepWindow, f64)> = None;
    for window in candidates {
        let trimmed: Result<Vec<Sample>, MetricsError> =
            series_per_node.iter().map(|s| window.apply(s)).collect();
        let Ok(trimmed) = trimmed else { continue };
        let score = mean_pairwise_similarity(&trimmed);
        match best {
            Some((_, s)) if s >= score => {}
            _ => best = Some((window, score)),
        }
    }
    best.ok_or(TuningError::NoStableWindow)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic_series(n: usize, period: usize, warm_tau: f64, phase_jitter: f64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let warm = 1.0 + 2.0 * (-(i as f64) / warm_tau).exp();
                let cycle = (i % period) as f64 + phase_jitter * ((i * 31 % 97) as f64 / 97.0);
                (100.0 + cycle) / warm
            })
            .collect()
    }

    #[test]
    fn finds_window_after_warmup() {
        let series = synthetic_series(240, 12, 6.0, 0.0);
        let w = search_step_window(&series, 0.95).unwrap();
        assert!(w.warmup > 0, "warmup region must be skipped");
        assert!(w.warmup <= 48, "but not excessively: {}", w.warmup);
        assert_eq!(w.measure % 12, 0, "measure spans whole cycles");
        assert!(w.time_saving(3072 + 72) > 0.9);
    }

    #[test]
    fn stable_series_needs_no_warmup() {
        let series: Vec<f64> = (0..160).map(|i| 100.0 + (i % 8) as f64).collect();
        let w = search_step_window(&series, 0.95).unwrap();
        assert_eq!(w.warmup, 0);
    }

    #[test]
    fn rejects_short_series() {
        assert!(matches!(
            search_step_window(&[1.0; 10], 0.95),
            Err(TuningError::TooShort { length: 10 })
        ));
    }

    #[test]
    fn chaotic_series_has_no_stable_window() {
        // Exponentially growing: consecutive cycles are never similar.
        let series: Vec<f64> = (0..128).map(|i| (1.05f64).powi(i)).collect();
        assert!(matches!(
            search_step_window(&series, 0.99),
            Err(TuningError::NoStableWindow)
        ));
    }

    #[test]
    fn window_apply_trims_correctly() {
        let series: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let w = StepWindow {
            warmup: 10,
            measure: 20,
        };
        let s = w.apply(&series).unwrap();
        assert_eq!(s.len(), 20);
        assert_eq!(s.values()[0], 10.0);
        assert!(StepWindow {
            warmup: 200,
            measure: 20
        }
        .apply(&series)
        .is_err());
    }

    #[test]
    fn shared_window_maximizes_cross_node_similarity() {
        let nodes: Vec<Vec<f64>> = (0..4)
            .map(|n| {
                synthetic_series(240, 12, 6.0, 0.0)
                    .into_iter()
                    .map(|v| v * (1.0 + n as f64 * 0.0005))
                    .collect()
            })
            .collect();
        let (window, score) = select_shared_window(&nodes, 0.95).unwrap();
        assert!(score > 0.95, "shared repeatability {score}");
        assert!(window.total() < 240);
    }

    #[test]
    fn shared_window_requires_input() {
        assert!(matches!(
            select_shared_window(&[], 0.95),
            Err(TuningError::TooShort { .. })
        ));
    }

    #[test]
    fn time_saving_is_bounded() {
        let w = StepWindow {
            warmup: 24,
            measure: 36,
        };
        assert_eq!(w.time_saving(0), 0.0);
        assert!((w.time_saving(3144) - (1.0 - 60.0 / 3144.0)).abs() < 1e-12);
        assert_eq!(
            StepWindow {
                warmup: 100,
                measure: 100
            }
            .time_saving(50),
            0.0
        );
    }
}

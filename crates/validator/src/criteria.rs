//! Criteria calculation (paper Algorithm 2).

use anubis_metrics::{
    pairwise_similarity_matrix, similarity_ecdf, stats, Ecdf, MetricsError, Sample,
};

/// How the centroid of a sample set is computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CentroidMethod {
    /// The medoid: the sample maximizing total similarity to all others
    /// (the paper's `GetCentroid`).
    Medoid,
    /// The samples' mean in distribution space (quantile average), the
    /// alternative Algorithm 2 mentions in its comment.
    DistributionMean,
}

/// Result of running Algorithm 2 on one benchmark's samples.
#[derive(Debug, Clone, PartialEq)]
pub struct CriteriaResult {
    /// The learned criteria sample `S_C`.
    pub criteria: Sample,
    /// Indices (into the input) excluded as defective during clustering.
    pub defects: Vec<usize>,
    /// Iterations until the clustering stabilized.
    pub iterations: usize,
}

/// Runs Algorithm 2: iteratively exclude samples whose similarity to the
/// centroid is `<= alpha` and recompute the centroid over the remainder.
///
/// Terminates when every remaining sample is strictly more similar than
/// `alpha` or when exclusion would empty the set (then the last non-empty
/// centroid is returned and everything else is defective). The iteration
/// count is bounded by the sample count since each round either stabilizes
/// or changes the defect set, and oscillations are cut by keeping the
/// defect set monotonically growing.
///
/// # Examples
///
/// ```
/// use anubis_metrics::Sample;
/// use anubis_validator::{calculate_criteria, CentroidMethod};
///
/// let mut samples: Vec<Sample> =
///     (0..10).map(|i| Sample::scalar(100.0 + i as f64 * 0.01).unwrap()).collect();
/// samples.push(Sample::scalar(60.0).unwrap()); // one defective node
/// let result = calculate_criteria(&samples, 0.95, CentroidMethod::Medoid).unwrap();
/// assert_eq!(result.defects, vec![10]);
/// ```
pub fn calculate_criteria(
    samples: &[Sample],
    alpha: f64,
    method: CentroidMethod,
) -> Result<CriteriaResult, MetricsError> {
    if samples.is_empty() {
        return Err(MetricsError::EmptySample);
    }
    if !(0.0..1.0).contains(&alpha) {
        return Err(MetricsError::InvalidParameter {
            name: "alpha",
            message: format!("similarity threshold {alpha} must be in [0, 1)"),
        });
    }
    let similarity = pairwise_similarity_matrix(samples);
    // Prebuilt per-sample ECDFs for the distribution-mean comparisons, so
    // each clustering round only constructs the (changing) mean's ECDF.
    let ecdfs: Vec<Ecdf> = match method {
        CentroidMethod::Medoid => Vec::new(),
        CentroidMethod::DistributionMean => samples.iter().map(Ecdf::new).collect(),
    };
    cluster_from_matrix(samples, &similarity, &ecdfs, alpha, method)
}

/// The Algorithm 2 clustering loop over a precomputed similarity matrix.
///
/// Shared by the batch path above and the incremental
/// [`crate::CriteriaCache`]: the loop is a pure function of the matrix
/// (and, for the distribution-mean method, the per-sample ECDFs), so any
/// path that supplies a bit-identical matrix gets a bit-identical
/// [`CriteriaResult`]. `ecdfs` may be empty for [`CentroidMethod::Medoid`]
/// and must cover every sample for [`CentroidMethod::DistributionMean`].
pub(crate) fn cluster_from_matrix(
    samples: &[Sample],
    similarity: &[Vec<f64>],
    ecdfs: &[Ecdf],
    alpha: f64,
    method: CentroidMethod,
) -> Result<CriteriaResult, MetricsError> {
    let n = samples.len();
    let mut healthy: Vec<usize> = (0..n).collect();
    let mut defects: Vec<usize> = Vec::new();
    let mut iterations = 0usize;

    loop {
        iterations += 1;
        let centroid_idx = medoid_of(&healthy, similarity);
        // Similarity of each healthy sample to the current centroid. For
        // the medoid method this reads straight from the matrix; for the
        // distribution mean we build the mean sample and compare.
        let centroid_sample;
        let sim_to_centroid: Vec<f64> = match method {
            CentroidMethod::Medoid => {
                centroid_sample = None;
                healthy
                    .iter()
                    .map(|&i| similarity[centroid_idx][i])
                    .collect()
            }
            CentroidMethod::DistributionMean => {
                let mean = distribution_mean(samples, &healthy)?;
                let mean_ecdf = Ecdf::new(&mean);
                // Member comparisons are independent; workers fill slots
                // in member order, identical to the sequential loop.
                let ecdfs_ref = &ecdfs;
                let sims = anubis_parallel::map_items(&healthy, 0, |&i| {
                    similarity_ecdf(&mean_ecdf, &ecdfs_ref[i])
                });
                centroid_sample = Some(mean);
                sims
            }
        };
        let newly_defective: Vec<usize> = healthy
            .iter()
            .zip(&sim_to_centroid)
            .filter(|(_, &s)| s <= alpha)
            .map(|(&i, _)| i)
            .collect();
        if newly_defective.is_empty() || newly_defective.len() == healthy.len() {
            // Stable, or excluding would empty the set: stop here.
            // `centroid_sample` is `Some` exactly for the distribution-
            // mean method; the medoid method reads from the sample set.
            let criteria = centroid_sample.unwrap_or_else(|| samples[centroid_idx].clone());
            defects.sort_unstable();
            return Ok(CriteriaResult {
                criteria,
                defects,
                iterations,
            });
        }
        healthy.retain(|i| !newly_defective.contains(i));
        defects.extend(newly_defective);
        if iterations > n {
            // Defensive bound; unreachable because defects grow monotonically.
            return Err(MetricsError::NoConvergence {
                algorithm: "criteria clustering",
                iterations,
            });
        }
    }
}

/// Medoid of `members` under the precomputed similarity matrix.
fn medoid_of(members: &[usize], similarity: &[Vec<f64>]) -> usize {
    debug_assert!(!members.is_empty());
    let mut best = members[0];
    let mut best_total = f64::NEG_INFINITY;
    for &i in members {
        let total: f64 = members.iter().map(|&j| similarity[i][j]).sum();
        if total > best_total {
            best = i;
            best_total = total;
        }
    }
    best
}

/// The 1-D Wasserstein barycenter of the member samples: average of their
/// quantile functions on a common grid.
fn distribution_mean(samples: &[Sample], members: &[usize]) -> Result<Sample, MetricsError> {
    let Some(grid) = members.iter().map(|&i| samples[i].len()).max() else {
        return Err(MetricsError::EmptySample);
    };
    let mut accum = vec![0.0f64; grid];
    for &i in members {
        let resampled = stats::resample_linear(samples[i].sorted(), grid);
        for (a, v) in accum.iter_mut().zip(&resampled) {
            *a += v;
        }
    }
    for a in &mut accum {
        *a /= members.len() as f64;
    }
    Sample::new(accum)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar(v: f64) -> Sample {
        Sample::scalar(v).unwrap()
    }

    fn series(base: f64, n: usize) -> Sample {
        Sample::new(
            (0..n)
                .map(|i| base + (i % 7) as f64 * base * 0.001)
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn all_healthy_keeps_everyone() {
        let samples: Vec<Sample> = (0..8).map(|i| scalar(100.0 + i as f64 * 0.02)).collect();
        let r = calculate_criteria(&samples, 0.95, CentroidMethod::Medoid).unwrap();
        assert!(r.defects.is_empty());
        assert_eq!(r.iterations, 1);
        assert!((r.criteria.mean() - 100.07).abs() < 0.1);
    }

    #[test]
    fn excludes_obvious_defects() {
        let mut samples: Vec<Sample> = (0..12)
            .map(|i| series(100.0 + i as f64 * 0.01, 64))
            .collect();
        samples.push(series(70.0, 64));
        samples.push(series(55.0, 64));
        let r = calculate_criteria(&samples, 0.95, CentroidMethod::Medoid).unwrap();
        assert_eq!(r.defects, vec![12, 13]);
    }

    #[test]
    fn iterative_exclusion_peels_layers() {
        // A defect cluster close enough to drag the first centroid: after
        // excluding the far outlier the centroid tightens and the mid
        // cluster falls out too.
        let mut samples: Vec<Sample> = (0..10).map(|_| scalar(100.0)).collect();
        samples.push(scalar(94.0)); // within alpha of 100? 6/100 = 0.06 > 0.05 -> out
        samples.push(scalar(40.0)); // far out
        let r = calculate_criteria(&samples, 0.95, CentroidMethod::Medoid).unwrap();
        assert!(r.defects.contains(&10));
        assert!(r.defects.contains(&11));
        assert_eq!(r.criteria.mean(), 100.0);
    }

    #[test]
    fn marginal_performance_stays_healthy() {
        // The Figure 9 story: nodes with marginal-but-acceptable
        // performance (inside alpha) are kept healthy, maximizing margin.
        let mut samples: Vec<Sample> = (0..10).map(|_| scalar(100.0)).collect();
        samples.push(scalar(97.0)); // 3% off: healthy at alpha = 0.95
        let r = calculate_criteria(&samples, 0.95, CentroidMethod::Medoid).unwrap();
        assert!(r.defects.is_empty());
    }

    #[test]
    fn distribution_mean_centroid_works() {
        let samples: Vec<Sample> = vec![
            Sample::new(vec![99.0, 100.0, 101.0]).unwrap(),
            Sample::new(vec![100.0, 101.0, 102.0]).unwrap(),
            Sample::new(vec![98.0, 99.0, 100.0]).unwrap(),
        ];
        let r = calculate_criteria(&samples, 0.9, CentroidMethod::DistributionMean).unwrap();
        assert!(r.defects.is_empty());
        // Quantile average of the three samples.
        assert_eq!(r.criteria.values(), &[99.0, 100.0, 101.0]);
    }

    #[test]
    fn distribution_mean_excludes_defects_too() {
        let mut samples: Vec<Sample> = (0..9).map(|_| series(200.0, 32)).collect();
        samples.push(series(120.0, 32));
        let r = calculate_criteria(&samples, 0.95, CentroidMethod::DistributionMean).unwrap();
        assert_eq!(r.defects, vec![9]);
    }

    #[test]
    fn singleton_input_is_its_own_criteria() {
        let samples = vec![scalar(42.0)];
        let r = calculate_criteria(&samples, 0.95, CentroidMethod::Medoid).unwrap();
        assert!(r.defects.is_empty());
        assert_eq!(r.criteria, samples[0]);
    }

    #[test]
    fn never_empties_the_set() {
        // Two wildly different samples: excluding both would empty the set,
        // so the algorithm stops with one of them as criteria.
        let samples = vec![scalar(100.0), scalar(10.0)];
        let r = calculate_criteria(&samples, 0.99, CentroidMethod::Medoid).unwrap();
        assert!(r.defects.len() < samples.len());
    }

    #[test]
    fn validates_parameters() {
        assert!(calculate_criteria(&[], 0.95, CentroidMethod::Medoid).is_err());
        let samples = vec![scalar(1.0)];
        assert!(calculate_criteria(&samples, 1.0, CentroidMethod::Medoid).is_err());
        assert!(calculate_criteria(&samples, -0.1, CentroidMethod::Medoid).is_err());
    }
}

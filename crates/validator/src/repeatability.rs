//! The repeatability metric (paper Section 3.4 and Tables 5/6).

use crate::filter::Criteria;
use anubis_metrics::{mean_pairwise_similarity, Sample};

/// Repeatability of a benchmark across nodes or runs: the arithmetic mean
/// of pairwise similarities (the paper's definition).
pub fn benchmark_repeatability(samples: &[Sample]) -> f64 {
    mean_pairwise_similarity(samples)
}

/// Repeatability measured against learned criteria: the mean of each
/// sample's similarity score to `criteria` — how Table 5/6 report it.
pub fn repeatability_vs_criteria(samples: &[Sample], criteria: &Criteria) -> f64 {
    if samples.is_empty() {
        return 1.0;
    }
    samples.iter().map(|s| criteria.similarity(s)).sum::<f64>() / samples.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use anubis_metrics::Direction;

    #[test]
    fn identical_runs_are_perfectly_repeatable() {
        let samples = vec![Sample::scalar(10.0).unwrap(); 5];
        assert_eq!(benchmark_repeatability(&samples), 1.0);
    }

    #[test]
    fn tight_cluster_is_highly_repeatable() {
        let samples: Vec<Sample> = (0..6)
            .map(|i| Sample::scalar(100.0 + i as f64 * 0.05).unwrap())
            .collect();
        let r = benchmark_repeatability(&samples);
        assert!(r > 0.997, "repeatability {r}");
    }

    #[test]
    fn spread_cluster_is_less_repeatable() {
        let tight: Vec<Sample> = (0..6)
            .map(|i| Sample::scalar(100.0 + i as f64 * 0.05).unwrap())
            .collect();
        let wide: Vec<Sample> = (0..6)
            .map(|i| Sample::scalar(100.0 + i as f64 * 2.0).unwrap())
            .collect();
        assert!(benchmark_repeatability(&wide) < benchmark_repeatability(&tight));
    }

    #[test]
    fn criteria_repeatability_ignores_faster_samples() {
        let criteria = Criteria {
            sample: Sample::scalar(100.0).unwrap(),
            direction: Direction::HigherIsBetter,
            alpha: 0.95,
        };
        let samples = vec![
            Sample::scalar(100.5).unwrap(),
            Sample::scalar(101.0).unwrap(),
        ];
        // Faster than criteria: one-sided similarity is exactly 1.
        assert_eq!(repeatability_vs_criteria(&samples, &criteria), 1.0);
        assert_eq!(repeatability_vs_criteria(&[], &criteria), 1.0);
    }
}

//! The ANUBIS Validator (paper Section 3.4).
//!
//! The Validator executes benchmarks on specified nodes and filters
//! defective ones against *criteria* learned offline:
//!
//! - [`criteria`]: Algorithm 2 — similarity-based clustering in CDF space
//!   that iteratively excludes defective samples and recomputes the
//!   centroid, producing a clear-cut healthy reference per benchmark;
//! - [`incremental`]: the incremental Algorithm 2 entry point — a
//!   [`CriteriaCache`] that keeps the pairwise similarity matrix alive
//!   across learning cycles and only integrates rows touched by new
//!   samples, bit-identical to the batch path;
//! - [`filter`]: online defect filtering with the one-direction distance
//!   (Eq. 4) against the learned criteria and threshold α;
//! - [`validator`]: the end-to-end `Validator` object tying criteria
//!   learning, two-phase execution and filtering together;
//! - [`repeatability`]: the paper's repeatability metric;
//! - [`tuning`]: Appendix B — adaptive warmup/measurement-step search via
//!   seasonal decomposition.

// Panic-freedom: this crate runs in the fleet-facing validation path.
// The xtask lint enforces the same invariant lexically; this makes the
// compiler enforce it too (tests may unwrap freely).
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod criteria;
pub mod filter;
pub mod history;
pub mod incremental;
pub mod repeatability;
pub mod tuning;
pub mod validator;

pub use criteria::{calculate_criteria, CentroidMethod, CriteriaResult};
pub use filter::{Criteria, DefectFilter};
pub use history::CriteriaHistory;
pub use incremental::CriteriaCache;
pub use repeatability::{benchmark_repeatability, repeatability_vs_criteria};
pub use tuning::{search_step_window, select_shared_window, StepWindow, TuningError};
pub use validator::{TrackedValidationError, ValidationReport, Validator, ValidatorConfig};

/// The paper's default similarity threshold α.
pub const DEFAULT_ALPHA: f64 = 0.95;

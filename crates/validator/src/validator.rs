//! The end-to-end Validator object.

use crate::criteria::{calculate_criteria, CentroidMethod, CriteriaResult};
use crate::filter::{Criteria, DefectFilter, FilterOutcome};
use anubis_benchsuite::{
    run_benchmark, run_benchmark_multi, BenchmarkId, Phase, RunData, SuiteError,
};
use anubis_hwsim::{NodeId, NodeSim};
use anubis_lifecycle::{LifecycleEvent, NodeLifecycle, TransitionError};
use anubis_metrics::MetricsError;
use anubis_netsim::FatTree;
use std::collections::BTreeMap;
use std::fmt;

/// Bucket edges (minutes) for the validation-duration histogram: spot
/// check, Selector subset, typical full set, build-out, worst case.
const DURATION_BUCKETS: &[f64] = &[1.0, 5.0, 15.0, 60.0, 240.0];

/// Validator configuration.
#[derive(Debug, Clone, Copy)]
pub struct ValidatorConfig {
    /// Similarity threshold α (the paper uses 0.95).
    pub alpha: f64,
    /// Centroid method for Algorithm 2.
    pub centroid: CentroidMethod,
}

impl Default for ValidatorConfig {
    fn default() -> Self {
        Self {
            alpha: crate::DEFAULT_ALPHA,
            centroid: CentroidMethod::Medoid,
        }
    }
}

/// Report of one validation pass.
#[derive(Debug, Clone, Default)]
pub struct ValidationReport {
    /// Defective nodes with the benchmarks that flagged them.
    pub flagged: BTreeMap<NodeId, Vec<BenchmarkId>>,
    /// All benchmark results gathered during the validation.
    pub data: RunData,
    /// Wall-clock cost in minutes (benchmarks run serially, nodes in
    /// parallel).
    pub duration_minutes: f64,
}

impl ValidationReport {
    /// Defective node ids, ascending.
    pub fn defective_nodes(&self) -> Vec<NodeId> {
        self.flagged.keys().copied().collect()
    }
}

/// Error from a lifecycle-tracked validation run
/// ([`Validator::validate_tracked`]).
#[derive(Debug)]
pub enum TrackedValidationError {
    /// The underlying benchmark run failed.
    Suite(SuiteError),
    /// A node could not legally enter or leave validation — e.g. it was
    /// still serving a job, or its risk threshold never crossed.
    Lifecycle(TransitionError),
    /// The lifecycle slice does not match the node slice.
    LifecycleCountMismatch {
        /// Number of nodes supplied.
        nodes: usize,
        /// Number of lifecycles supplied.
        lifecycles: usize,
    },
}

impl fmt::Display for TrackedValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Suite(e) => write!(f, "validation run failed: {e}"),
            Self::Lifecycle(e) => write!(f, "lifecycle discipline violated: {e}"),
            Self::LifecycleCountMismatch { nodes, lifecycles } => {
                write!(f, "{nodes} nodes but {lifecycles} lifecycles")
            }
        }
    }
}

impl std::error::Error for TrackedValidationError {}

impl From<SuiteError> for TrackedValidationError {
    fn from(e: SuiteError) -> Self {
        Self::Suite(e)
    }
}

impl From<TransitionError> for TrackedValidationError {
    fn from(e: TransitionError) -> Self {
        Self::Lifecycle(e)
    }
}

/// The ANUBIS Validator: learns criteria offline and filters defective
/// nodes online, executing benchmarks in the paper's two-phase order and
/// removing defective nodes between phases.
///
/// # Examples
///
/// ```
/// use anubis_benchsuite::{run_benchmark, BenchmarkId, RunData};
/// use anubis_hwsim::{NodeId, NodeSim, NodeSpec};
/// use anubis_validator::{Validator, ValidatorConfig};
///
/// // Learn criteria from a healthy cohort.
/// let mut data = RunData::default();
/// let rows: Vec<_> = (0..8)
///     .map(|i| {
///         let mut node = NodeSim::new(NodeId(i), NodeSpec::a100_8x(), 5);
///         (node.id(), run_benchmark(BenchmarkId::GpuGemmFp16, &mut node).unwrap())
///     })
///     .collect();
/// data.results.insert(BenchmarkId::GpuGemmFp16, rows);
/// let mut validator = Validator::new(ValidatorConfig::default());
/// validator.learn_criteria(&data).unwrap();
/// assert!(!validator.filter().is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Validator {
    config: ValidatorConfig,
    filter: DefectFilter,
}

impl Validator {
    /// Creates a Validator with no criteria learned yet.
    pub fn new(config: ValidatorConfig) -> Self {
        Self {
            config,
            filter: DefectFilter::new(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ValidatorConfig {
        &self.config
    }

    /// The current per-benchmark criteria.
    pub fn filter(&self) -> &DefectFilter {
        &self.filter
    }

    /// Learns (or refreshes) criteria from a full-set run across many
    /// nodes — the cluster build-out bootstrap.
    ///
    /// Returns the per-benchmark clustering results (including which input
    /// nodes were excluded as defective while learning).
    pub fn learn_criteria(
        &mut self,
        data: &RunData,
    ) -> Result<BTreeMap<BenchmarkId, CriteriaResult>, MetricsError> {
        let _span = anubis_obs::span!("validator.learn_criteria");
        let mut results = BTreeMap::new();
        for (&bench, rows) in &data.results {
            let _bench_span = anubis_obs::span!(bench.spec().name);
            let samples: Vec<_> = rows.iter().map(|(_, s)| s.clone()).collect();
            let result = calculate_criteria(&samples, self.config.alpha, self.config.centroid)?;
            self.filter.set_criteria(
                bench,
                Criteria {
                    sample: result.criteria.clone(),
                    direction: bench.spec().direction,
                    alpha: self.config.alpha,
                },
            );
            results.insert(bench, result);
        }
        anubis_obs::counter!("validator.criteria_learned", results.len() as i64);
        Ok(results)
    }

    /// Filters previously-gathered results against the learned criteria.
    pub fn filter_data(&self, data: &RunData) -> FilterOutcome {
        self.filter.filter(data)
    }

    /// Runs a benchmark (sub)set on nodes and filters defects, removing
    /// phase-1 defects before the multi-node phase (Section 4).
    ///
    /// `members[i]` is the fabric index of `nodes[i]`; `fabric` may be
    /// `None` when the set has no multi-node benchmarks.
    pub fn validate(
        &self,
        set: &[BenchmarkId],
        nodes: &mut [NodeSim],
        members: &[usize],
        fabric: Option<&FatTree>,
    ) -> Result<ValidationReport, SuiteError> {
        if nodes.is_empty() {
            return Err(SuiteError::EmptyNodeSet);
        }
        if nodes.len() != members.len() {
            return Err(SuiteError::MemberMismatch {
                nodes: nodes.len(),
                members: members.len(),
            });
        }
        let _span = anubis_obs::span!("validator.validate");
        let mut report = ValidationReport {
            duration_minutes: BenchmarkId::total_runtime_minutes(set),
            ..Default::default()
        };
        anubis_obs::hist!(
            "validator.duration_minutes",
            report.duration_minutes,
            DURATION_BUCKETS
        );

        // Phase 1: single-node benchmarks on every node.
        for &bench in set.iter().filter(|b| b.spec().phase == Phase::SingleNode) {
            let _bench_span = anubis_obs::span!(bench.spec().name);
            let mut rows = Vec::with_capacity(nodes.len());
            for node in nodes.iter_mut() {
                rows.push((node.id(), run_benchmark(bench, node)?));
            }
            report.data.results.insert(bench, rows);
        }
        let phase1 = self.filter.filter(&report.data);
        report.flagged = phase1.flagged;

        // Phase 2: multi-node benchmarks on the surviving nodes only.
        let multi: Vec<BenchmarkId> = set
            .iter()
            .copied()
            .filter(|b| b.spec().phase == Phase::MultiNode)
            .collect();
        if !multi.is_empty() {
            let Some(fabric) = fabric else {
                return Err(SuiteError::MissingFabric(multi[0]));
            };
            let healthy_idx: Vec<usize> = (0..nodes.len())
                .filter(|&i| !report.flagged.contains_key(&nodes[i].id()))
                .collect();
            if healthy_idx.len() >= 2 {
                // Work on clones of the healthy nodes so index mapping stays
                // simple, then fold RNG-free results back.
                let mut healthy_nodes: Vec<NodeSim> =
                    healthy_idx.iter().map(|&i| nodes[i].clone()).collect();
                let healthy_members: Vec<usize> = healthy_idx.iter().map(|&i| members[i]).collect();
                let mut phase2 = RunData::default();
                for bench in multi {
                    let _bench_span = anubis_obs::span!(bench.spec().name);
                    let samples =
                        run_benchmark_multi(bench, &mut healthy_nodes, &healthy_members, fabric)?;
                    let rows = healthy_nodes
                        .iter()
                        .zip(samples)
                        .map(|(n, s)| (n.id(), s))
                        .collect();
                    phase2.results.insert(bench, rows);
                }
                let outcome = self.filter.filter(&phase2);
                for (node, benches) in outcome.flagged {
                    report.flagged.entry(node).or_default().extend(benches);
                }
                report.data.merge(phase2);
            }
        }
        Ok(report)
    }

    /// Like [`Validator::validate`], but routes every node through the
    /// lifecycle state machine: each node enters validation via
    /// [`LifecycleEvent::ValidationStarted`] (which the machine rejects
    /// unless its risk threshold crossed — in particular it rejects a node
    /// still serving a job) and leaves via
    /// [`LifecycleEvent::DefectConfirmed`] or
    /// [`LifecycleEvent::ValidationPassed`] according to the report.
    ///
    /// `lifecycles[i]` tracks `nodes[i]`.
    ///
    /// # Errors
    ///
    /// Fails with [`TrackedValidationError::Lifecycle`] *before running any
    /// benchmark* if any node cannot legally start validation (no lifecycle
    /// is modified in that case); with [`TrackedValidationError::Suite`] if
    /// the benchmark run itself fails (the lifecycles then remain
    /// `Validating` — the caller decides between retry and quarantine).
    pub fn validate_tracked(
        &self,
        set: &[BenchmarkId],
        nodes: &mut [NodeSim],
        members: &[usize],
        fabric: Option<&FatTree>,
        lifecycles: &mut [NodeLifecycle],
    ) -> Result<ValidationReport, TrackedValidationError> {
        if lifecycles.len() != nodes.len() {
            return Err(TrackedValidationError::LifecycleCountMismatch {
                nodes: nodes.len(),
                lifecycles: lifecycles.len(),
            });
        }
        // Atomic entry: reject the whole run before touching any lifecycle.
        for life in lifecycles.iter() {
            if !life.can(LifecycleEvent::ValidationStarted) {
                return Err(TransitionError {
                    from: life.state(),
                    event: LifecycleEvent::ValidationStarted,
                }
                .into());
            }
        }
        for life in lifecycles.iter_mut() {
            life.apply(LifecycleEvent::ValidationStarted)?;
        }
        let report = self.validate(set, nodes, members, fabric)?;
        for (node, life) in nodes.iter().zip(lifecycles.iter_mut()) {
            let verdict = if report.flagged.contains_key(&node.id()) {
                LifecycleEvent::DefectConfirmed
            } else {
                LifecycleEvent::ValidationPassed
            };
            life.apply(verdict)?;
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anubis_hwsim::{FaultKind, NodeSpec};
    use anubis_netsim::{FatTree, FatTreeConfig};

    fn fleet(n: u32, seed: u64) -> Vec<NodeSim> {
        (0..n)
            .map(|i| NodeSim::new(NodeId(i), NodeSpec::a100_8x(), seed))
            .collect()
    }

    fn bootstrap_validator(nodes: &mut [NodeSim], set: &[BenchmarkId]) -> Validator {
        let mut data = RunData::default();
        for &bench in set.iter().filter(|b| b.spec().phase == Phase::SingleNode) {
            let rows = nodes
                .iter_mut()
                .map(|n| (n.id(), run_benchmark(bench, n).unwrap()))
                .collect();
            data.results.insert(bench, rows);
        }
        let mut validator = Validator::new(ValidatorConfig::default());
        validator.learn_criteria(&data).unwrap();
        validator
    }

    #[test]
    fn learns_criteria_and_flags_injected_defects() {
        let set = [BenchmarkId::GpuGemmFp16, BenchmarkId::GpuH2dBandwidth];
        let mut healthy = fleet(16, 3);
        let validator = bootstrap_validator(&mut healthy, &set);

        let mut nodes = fleet(4, 77);
        nodes[1].inject_fault(FaultKind::GpuComputeDegraded { severity: 0.3 });
        nodes[3].inject_fault(FaultKind::PcieDowngrade { severity: 0.5 });
        let members = vec![0, 1, 2, 3];
        let report = validator
            .validate(&set, &mut nodes, &members, None)
            .unwrap();
        assert_eq!(report.defective_nodes(), vec![NodeId(1), NodeId(3)]);
        assert_eq!(report.flagged[&NodeId(1)], vec![BenchmarkId::GpuGemmFp16]);
        assert_eq!(
            report.flagged[&NodeId(3)],
            vec![BenchmarkId::GpuH2dBandwidth]
        );
    }

    #[test]
    fn healthy_nodes_pass() {
        let set = [
            BenchmarkId::GpuGemmFp16,
            BenchmarkId::CpuLatency,
            BenchmarkId::DiskSeqRead,
        ];
        let mut pool = fleet(16, 5);
        let validator = bootstrap_validator(&mut pool, &set);
        let mut nodes = fleet(6, 123);
        let members = vec![0, 1, 2, 3, 4, 5];
        let report = validator
            .validate(&set, &mut nodes, &members, None)
            .unwrap();
        assert!(report.defective_nodes().is_empty(), "{:?}", report.flagged);
    }

    #[test]
    fn two_phase_removes_defects_before_multi_node() {
        let single = [BenchmarkId::GpuGemmFp16];
        let multi = [BenchmarkId::MultiNodeAllReduce];
        let fabric = FatTree::build(FatTreeConfig::figure3_testbed()).unwrap();

        // Bootstrap criteria for both phases.
        let mut pool = fleet(12, 9);
        let mut validator = bootstrap_validator(&mut pool, &single);
        let mut multi_pool = fleet(12, 9);
        let members: Vec<usize> = (0..12).collect();
        let samples = run_benchmark_multi(multi[0], &mut multi_pool, &members, &fabric).unwrap();
        let mut data = RunData::default();
        data.results.insert(
            multi[0],
            multi_pool
                .iter()
                .zip(samples)
                .map(|(n, s)| (n.id(), s))
                .collect(),
        );
        validator.learn_criteria(&data).unwrap();

        // One compute-defective node must be excluded in phase 1 and not
        // poison phase 2.
        let mut nodes = fleet(4, 21);
        nodes[0].inject_fault(FaultKind::GpuComputeDegraded { severity: 0.5 });
        let set = [single[0], multi[0]];
        let report = validator
            .validate(&set, &mut nodes, &[0, 1, 2, 3], Some(&fabric))
            .unwrap();
        assert!(report.flagged.contains_key(&NodeId(0)));
        // Phase 2 data exists and excludes node 0.
        let rows = report.data.samples_for(multi[0]).unwrap();
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|(id, _)| *id != NodeId(0)));
    }

    #[test]
    fn validate_requires_fabric_for_multi_node() {
        let validator = Validator::new(ValidatorConfig::default());
        let mut nodes = fleet(2, 1);
        let err = validator.validate(
            &[BenchmarkId::MultiNodeAllReduce],
            &mut nodes,
            &[0, 1],
            None,
        );
        assert!(matches!(err, Err(SuiteError::MissingFabric(_))));
    }

    #[test]
    fn validate_tracked_confirms_defects_and_passes_the_rest() {
        let set = [BenchmarkId::GpuGemmFp16, BenchmarkId::GpuH2dBandwidth];
        let mut healthy = fleet(16, 3);
        let validator = bootstrap_validator(&mut healthy, &set);

        let mut nodes = fleet(4, 77);
        nodes[1].inject_fault(FaultKind::GpuComputeDegraded { severity: 0.3 });
        let members = vec![0, 1, 2, 3];
        // All four nodes crossed the risk threshold before validation.
        let mut lives = vec![NodeLifecycle::new(); 4];
        for life in &mut lives {
            life.apply(LifecycleEvent::RiskCrossed).unwrap();
        }
        let report = validator
            .validate_tracked(&set, &mut nodes, &members, None, &mut lives)
            .unwrap();
        assert_eq!(report.defective_nodes(), vec![NodeId(1)]);
        assert!(lives[1].state().is_quarantined());
        for (i, life) in lives.iter().enumerate() {
            if i != 1 {
                assert!(life.state().is_healthy(), "node {i}: {:?}", life.state());
            }
        }
    }

    #[test]
    fn validate_tracked_rejects_nodes_serving_jobs() {
        let set = [BenchmarkId::GpuGemmFp16];
        let mut healthy = fleet(16, 3);
        let validator = bootstrap_validator(&mut healthy, &set);
        let mut nodes = fleet(2, 5);
        let mut lives = vec![NodeLifecycle::new(); 2];
        lives[0].apply(LifecycleEvent::RiskCrossed).unwrap();
        lives[1].apply(LifecycleEvent::JobAssigned).unwrap();
        let err = validator
            .validate_tracked(&set, &mut nodes, &[0, 1], None, &mut lives)
            .unwrap_err();
        assert!(
            matches!(err, TrackedValidationError::Lifecycle(e) if e.from.is_busy()),
            "busy node must be rejected"
        );
        // Atomic entry: node 0 was not moved into `Validating`.
        assert!(lives[0].state().is_suspect());
        assert!(lives[1].state().is_busy());
    }

    #[test]
    fn validate_tracked_requires_matching_slices() {
        let validator = Validator::new(ValidatorConfig::default());
        let mut nodes = fleet(2, 1);
        let mut lives = vec![NodeLifecycle::new(); 1];
        let err = validator
            .validate_tracked(
                &[BenchmarkId::GpuGemmFp16],
                &mut nodes,
                &[0, 1],
                None,
                &mut lives,
            )
            .unwrap_err();
        assert!(matches!(
            err,
            TrackedValidationError::LifecycleCountMismatch {
                nodes: 2,
                lifecycles: 1
            }
        ));
    }

    #[test]
    fn report_duration_matches_set_runtime() {
        let set = [BenchmarkId::GpuGemmFp16, BenchmarkId::CpuLatency];
        let mut pool = fleet(8, 2);
        let validator = bootstrap_validator(&mut pool, &set);
        let mut nodes = fleet(2, 8);
        let report = validator.validate(&set, &mut nodes, &[0, 1], None).unwrap();
        assert_eq!(
            report.duration_minutes,
            BenchmarkId::total_runtime_minutes(&set)
        );
    }
}

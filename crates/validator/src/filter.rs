//! Online defect filtering (paper Eq. 4 + threshold α).

use anubis_benchsuite::{BenchmarkId, RunData};
use anubis_hwsim::NodeId;
use anubis_metrics::json::{to_json, JsonError};
use anubis_metrics::{one_sided_similarity, Direction, Sample};
use std::collections::{BTreeMap, BTreeSet};

/// Learned criteria for one benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct Criteria {
    /// The reference sample `S_C` from Algorithm 2.
    pub sample: Sample,
    /// Metric direction from the benchmark spec.
    pub direction: Direction,
    /// Similarity threshold α.
    pub alpha: f64,
}

impl Criteria {
    /// One-direction similarity of an observation to this criteria.
    pub fn similarity(&self, observed: &Sample) -> f64 {
        one_sided_similarity(observed, &self.sample, self.direction)
    }

    /// Whether an observation violates the criteria (similarity `<= α`).
    pub fn is_defective(&self, observed: &Sample) -> bool {
        self.similarity(observed) <= self.alpha
    }
}

/// Serializable view of one benchmark's learned criteria.
#[derive(serde::Serialize)]
struct CriteriaRecord<'a> {
    benchmark: &'a str,
    direction: Direction,
    alpha: f64,
    criteria: &'a Sample,
}

/// A set of per-benchmark criteria plus the filtering logic: a node is
/// defective if **any** of its benchmark results violates its criteria.
#[derive(Debug, Clone, Default)]
pub struct DefectFilter {
    criteria: BTreeMap<BenchmarkId, Criteria>,
}

impl DefectFilter {
    /// Creates an empty filter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs (or replaces) the criteria for a benchmark.
    pub fn set_criteria(&mut self, bench: BenchmarkId, criteria: Criteria) {
        self.criteria.insert(bench, criteria);
    }

    /// The criteria for a benchmark, if learned.
    pub fn criteria_for(&self, bench: BenchmarkId) -> Option<&Criteria> {
        self.criteria.get(&bench)
    }

    /// Benchmarks with learned criteria.
    pub fn benchmarks(&self) -> Vec<BenchmarkId> {
        self.criteria.keys().copied().collect()
    }

    /// Whether any criteria have been learned.
    pub fn is_empty(&self) -> bool {
        self.criteria.is_empty()
    }

    /// Exports every learned criteria as JSON lines, so operators can
    /// archive and diff the fleet's pass/fail boundaries across
    /// re-learning cycles.
    pub fn export_jsonl(&self) -> Result<String, JsonError> {
        let mut out = String::new();
        for (bench, criteria) in &self.criteria {
            let record = CriteriaRecord {
                benchmark: bench.spec().name,
                direction: criteria.direction,
                alpha: criteria.alpha,
                criteria: &criteria.sample,
            };
            out.push_str(&to_json(&record)?);
            out.push('\n');
        }
        Ok(out)
    }

    /// Filters a run's results, returning defective nodes and, per node,
    /// the benchmarks that flagged it.
    ///
    /// Benchmarks without learned criteria are skipped (first-validation
    /// bootstrap learns them instead).
    pub fn filter(&self, data: &RunData) -> FilterOutcome {
        let mut flagged: BTreeMap<NodeId, Vec<BenchmarkId>> = BTreeMap::new();
        let mut checked: BTreeSet<NodeId> = BTreeSet::new();
        for (&bench, rows) in &data.results {
            let Some(criteria) = self.criteria.get(&bench) else {
                continue;
            };
            for (node, sample) in rows {
                checked.insert(*node);
                if criteria.is_defective(sample) {
                    flagged.entry(*node).or_default().push(bench);
                }
            }
        }
        FilterOutcome { flagged, checked }
    }
}

/// Outcome of filtering one validation run.
#[derive(Debug, Clone, Default)]
pub struct FilterOutcome {
    /// Defective nodes with the benchmarks that flagged them.
    pub flagged: BTreeMap<NodeId, Vec<BenchmarkId>>,
    /// Every node that had at least one benchmark checked.
    pub checked: BTreeSet<NodeId>,
}

impl FilterOutcome {
    /// Defective node ids, ascending.
    pub fn defective_nodes(&self) -> Vec<NodeId> {
        self.flagged.keys().copied().collect()
    }

    /// Whether a specific node was flagged.
    pub fn is_defective(&self, node: NodeId) -> bool {
        self.flagged.contains_key(&node)
    }

    /// Fraction of checked nodes flagged defective (0 when none checked).
    pub fn defect_rate(&self) -> f64 {
        if self.checked.is_empty() {
            0.0
        } else {
            self.flagged.len() as f64 / self.checked.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar(v: f64) -> Sample {
        Sample::scalar(v).unwrap()
    }

    fn throughput_criteria(value: f64) -> Criteria {
        Criteria {
            sample: scalar(value),
            direction: Direction::HigherIsBetter,
            alpha: 0.95,
        }
    }

    #[test]
    fn slow_node_is_defective_fast_node_is_not() {
        let c = throughput_criteria(100.0);
        assert!(c.is_defective(&scalar(90.0)));
        assert!(!c.is_defective(&scalar(99.0)));
        assert!(
            !c.is_defective(&scalar(120.0)),
            "faster than criteria is fine"
        );
    }

    #[test]
    fn latency_direction_flips() {
        let c = Criteria {
            sample: scalar(100.0),
            direction: Direction::LowerIsBetter,
            alpha: 0.95,
        };
        assert!(c.is_defective(&scalar(115.0)), "higher latency is a defect");
        assert!(!c.is_defective(&scalar(90.0)), "lower latency is fine");
    }

    #[test]
    fn filter_unions_benchmarks_per_node() {
        let mut filter = DefectFilter::new();
        filter.set_criteria(BenchmarkId::GpuGemmFp16, throughput_criteria(300.0));
        filter.set_criteria(BenchmarkId::GpuH2dBandwidth, throughput_criteria(24.0));
        let mut data = RunData::default();
        data.results.insert(
            BenchmarkId::GpuGemmFp16,
            vec![
                (NodeId(0), scalar(299.0)),
                (NodeId(1), scalar(200.0)),
                (NodeId(2), scalar(298.0)),
            ],
        );
        data.results.insert(
            BenchmarkId::GpuH2dBandwidth,
            vec![
                (NodeId(0), scalar(23.9)),
                (NodeId(1), scalar(23.8)),
                (NodeId(2), scalar(12.0)),
            ],
        );
        let outcome = filter.filter(&data);
        assert_eq!(outcome.defective_nodes(), vec![NodeId(1), NodeId(2)]);
        assert_eq!(outcome.flagged[&NodeId(1)], vec![BenchmarkId::GpuGemmFp16]);
        assert_eq!(
            outcome.flagged[&NodeId(2)],
            vec![BenchmarkId::GpuH2dBandwidth]
        );
        assert!(!outcome.is_defective(NodeId(0)));
        assert!((outcome.defect_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn unknown_benchmarks_are_skipped() {
        let filter = DefectFilter::new();
        let mut data = RunData::default();
        data.results
            .insert(BenchmarkId::CpuLatency, vec![(NodeId(0), scalar(500.0))]);
        let outcome = filter.filter(&data);
        assert!(outcome.defective_nodes().is_empty());
        assert!(outcome.checked.is_empty());
        assert_eq!(outcome.defect_rate(), 0.0);
    }

    #[test]
    fn criteria_export_is_valid_jsonl() {
        let mut filter = DefectFilter::new();
        filter.set_criteria(BenchmarkId::GpuGemmFp16, throughput_criteria(300.0));
        filter.set_criteria(
            BenchmarkId::CpuLatency,
            Criteria {
                sample: scalar(95.0),
                direction: Direction::LowerIsBetter,
                alpha: 0.95,
            },
        );
        let jsonl = filter.export_jsonl().unwrap();
        assert_eq!(jsonl.lines().count(), 2);
        assert!(jsonl.contains(r#""benchmark":"CPU latency""#));
        assert!(jsonl.contains(r#""direction":"LowerIsBetter""#));
        assert!(jsonl.contains(r#""criteria":[300]"#));
    }

    #[test]
    fn alpha_controls_strictness() {
        let loose = Criteria {
            sample: scalar(100.0),
            direction: Direction::HigherIsBetter,
            alpha: 0.8,
        };
        let strict = Criteria {
            sample: scalar(100.0),
            direction: Direction::HigherIsBetter,
            alpha: 0.99,
        };
        let observed = scalar(90.0); // 10% regression
        assert!(!loose.is_defective(&observed));
        assert!(strict.is_defective(&observed));
    }
}

//! Criteria evolution: rolling benchmark-result history and periodic
//! re-learning.
//!
//! Figure 7's loop: "the new node statuses and benchmark results will be
//! continuously collected ... to periodically update the offline model and
//! criteria, allowing the entire system to evolve in tandem with the
//! latest node statuses". This module keeps a bounded, most-recent-first
//! window of samples per benchmark and re-runs Algorithm 2 over it, so
//! criteria track firmware/driver drift instead of freezing at build-out.

use crate::criteria::{calculate_criteria, CentroidMethod, CriteriaResult};
use crate::filter::{Criteria, DefectFilter};
use crate::incremental::CriteriaCache;
use anubis_benchsuite::{BenchmarkId, RunData};
use anubis_metrics::{MetricsError, Sample};
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// Rolling window of benchmark results feeding criteria re-learning.
#[derive(Debug, Clone)]
pub struct CriteriaHistory {
    window: usize,
    samples: BTreeMap<BenchmarkId, VecDeque<Sample>>,
}

impl CriteriaHistory {
    /// Creates a history keeping the most recent `window` samples per
    /// benchmark.
    ///
    /// # Errors
    ///
    /// Returns [`MetricsError::InvalidParameter`] if `window` is zero; an
    /// empty window cannot learn criteria.
    pub fn new(window: usize) -> Result<Self, MetricsError> {
        if window == 0 {
            return Err(MetricsError::InvalidParameter {
                name: "window",
                message: "history window must be positive".to_owned(),
            });
        }
        Ok(Self {
            window,
            samples: BTreeMap::new(),
        })
    }

    /// Absorbs a validation run's results, evicting the oldest samples
    /// beyond the window.
    pub fn absorb(&mut self, data: &RunData) {
        for (&bench, rows) in &data.results {
            let queue = self.samples.entry(bench).or_default();
            for (_, sample) in rows {
                if queue.len() == self.window {
                    queue.pop_front();
                }
                queue.push_back(sample.clone());
            }
        }
    }

    /// Samples currently retained for one benchmark.
    pub fn len_of(&self, bench: BenchmarkId) -> usize {
        self.samples.get(&bench).map_or(0, VecDeque::len)
    }

    /// Re-learns criteria for every benchmark with enough history and
    /// installs them into `filter`. Returns the per-benchmark clustering
    /// results.
    ///
    /// Benchmarks with fewer than `min_samples` retained samples are
    /// skipped (their existing criteria stay in force).
    pub fn relearn(
        &self,
        filter: &mut DefectFilter,
        alpha: f64,
        centroid: CentroidMethod,
        min_samples: usize,
    ) -> Result<BTreeMap<BenchmarkId, CriteriaResult>, MetricsError> {
        let mut results = BTreeMap::new();
        for (&bench, queue) in &self.samples {
            if queue.len() < min_samples.max(1) {
                continue;
            }
            let samples: Vec<Sample> = queue.iter().cloned().collect();
            let result = calculate_criteria(&samples, alpha, centroid)?;
            filter.set_criteria(
                bench,
                Criteria {
                    sample: result.criteria.clone(),
                    direction: bench.spec().direction,
                    alpha,
                },
            );
            results.insert(bench, result);
        }
        Ok(results)
    }

    /// [`CriteriaHistory::relearn`] through per-benchmark
    /// [`CriteriaCache`]s: while a benchmark's window is still growing,
    /// only the matrix rows its new samples touch are integrated; once
    /// the window starts evicting, that benchmark's cache rebuilds. The
    /// caller owns `caches` so the state survives across learning
    /// cycles. Results (and the criteria installed into `filter`) are
    /// bit-identical to the batch [`CriteriaHistory::relearn`].
    pub fn relearn_incremental(
        &self,
        caches: &mut BTreeMap<BenchmarkId, CriteriaCache>,
        filter: &mut DefectFilter,
        alpha: f64,
        centroid: CentroidMethod,
        min_samples: usize,
    ) -> Result<BTreeMap<BenchmarkId, CriteriaResult>, MetricsError> {
        let mut results = BTreeMap::new();
        for (&bench, queue) in &self.samples {
            if queue.len() < min_samples.max(1) {
                continue;
            }
            let cache = match caches.entry(bench) {
                std::collections::btree_map::Entry::Occupied(e) => e.into_mut(),
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(CriteriaCache::new(alpha, centroid)?)
                }
            };
            if cache.alpha() != alpha || cache.method() != centroid {
                *cache = CriteriaCache::new(alpha, centroid)?;
            }
            cache.sync(queue.iter());
            let result = cache.result()?;
            filter.set_criteria(
                bench,
                Criteria {
                    sample: result.criteria.clone(),
                    direction: bench.spec().direction,
                    alpha,
                },
            );
            results.insert(bench, result);
        }
        Ok(results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anubis_hwsim::NodeId;

    fn run_data(bench: BenchmarkId, values: &[f64]) -> RunData {
        let mut data = RunData::default();
        data.results.insert(
            bench,
            values
                .iter()
                .enumerate()
                .map(|(i, &v)| (NodeId(i as u32), Sample::scalar(v).unwrap()))
                .collect(),
        );
        data
    }

    #[test]
    fn window_evicts_oldest() {
        let mut history = CriteriaHistory::new(4).unwrap();
        history.absorb(&run_data(BenchmarkId::GpuGemmFp16, &[1.0, 2.0, 3.0]));
        history.absorb(&run_data(BenchmarkId::GpuGemmFp16, &[4.0, 5.0, 6.0]));
        assert_eq!(history.len_of(BenchmarkId::GpuGemmFp16), 4);
        assert_eq!(history.len_of(BenchmarkId::CpuLatency), 0);
    }

    #[test]
    fn criteria_track_a_fleetwide_drift() {
        // Firmware update shifts nominal GEMM from 300 to 270 TFLOPS; the
        // rolling window re-learns, so the slower-but-uniform fleet stays
        // healthy instead of being mass-flagged.
        let mut history = CriteriaHistory::new(12).unwrap();
        let mut filter = DefectFilter::new();
        let old: Vec<f64> = (0..12).map(|i| 300.0 + f64::from(i) * 0.05).collect();
        history.absorb(&run_data(BenchmarkId::GpuGemmFp16, &old));
        history
            .relearn(&mut filter, 0.95, CentroidMethod::Medoid, 4)
            .unwrap();
        let old_criteria = filter
            .criteria_for(BenchmarkId::GpuGemmFp16)
            .unwrap()
            .clone();
        assert!(old_criteria.is_defective(&Sample::scalar(270.0).unwrap()));

        let new: Vec<f64> = (0..12).map(|i| 270.0 + f64::from(i) * 0.05).collect();
        history.absorb(&run_data(BenchmarkId::GpuGemmFp16, &new));
        history
            .relearn(&mut filter, 0.95, CentroidMethod::Medoid, 4)
            .unwrap();
        let refreshed = filter.criteria_for(BenchmarkId::GpuGemmFp16).unwrap();
        assert!(
            !refreshed.is_defective(&Sample::scalar(270.0).unwrap()),
            "criteria must follow the new nominal"
        );
    }

    #[test]
    fn thin_history_is_skipped() {
        let mut history = CriteriaHistory::new(16).unwrap();
        history.absorb(&run_data(BenchmarkId::CpuLatency, &[95.0, 96.0]));
        let mut filter = DefectFilter::new();
        let results = history
            .relearn(&mut filter, 0.95, CentroidMethod::Medoid, 8)
            .unwrap();
        assert!(results.is_empty());
        assert!(filter.criteria_for(BenchmarkId::CpuLatency).is_none());
    }

    #[test]
    fn incremental_relearn_matches_batch_across_eviction() {
        let mut history = CriteriaHistory::new(12).unwrap();
        let mut caches = BTreeMap::new();
        for round in 0..4u32 {
            // 6 samples per round: the window grows for two rounds, then
            // evicts — exercising both the incremental and rebuild paths.
            let values: Vec<f64> = (0..6).map(|i| 300.0 + f64::from(round * 6 + i)).collect();
            history.absorb(&run_data(BenchmarkId::GpuGemmFp16, &values));
            let mut batch_filter = DefectFilter::new();
            let mut inc_filter = DefectFilter::new();
            let batch = history
                .relearn(&mut batch_filter, 0.9, CentroidMethod::Medoid, 1)
                .unwrap();
            let incremental = history
                .relearn_incremental(&mut caches, &mut inc_filter, 0.9, CentroidMethod::Medoid, 1)
                .unwrap();
            assert_eq!(batch, incremental, "round {round}");
            assert_eq!(
                batch_filter.criteria_for(BenchmarkId::GpuGemmFp16),
                inc_filter.criteria_for(BenchmarkId::GpuGemmFp16)
            );
        }
    }

    #[test]
    fn zero_window_is_rejected() {
        assert!(matches!(
            CriteriaHistory::new(0),
            Err(MetricsError::InvalidParameter { name: "window", .. })
        ));
    }
}

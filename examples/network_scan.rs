//! Networking validation: redundancy masking and the Appendix A scans.
//!
//! Builds the paper's 24-node fat-tree testbed, breaks redundant ToR
//! uplinks past the masking budget, and shows (a) how the Figure 3
//! congestion regression appears in concurrent pair bandwidths and (b) how
//! the O(n) full scan and O(1) quick scan localize it.
//!
//! ```text
//! cargo run --release --example network_scan
//! ```

use anubis::netsim::{
    concurrent_pair_bandwidths, full_scan_rounds, quick_scan_rounds, FatTree, FatTreeConfig,
};

fn scan_and_report(tree: &FatTree, label: &str) {
    let mut slow_pairs = 0usize;
    let mut total_pairs = 0usize;
    let mut min_bw = f64::INFINITY;
    for round in full_scan_rounds(tree.nodes()) {
        let bws = concurrent_pair_bandwidths(tree, &round).expect("valid pairs");
        for bw in bws {
            total_pairs += 1;
            min_bw = min_bw.min(bw);
            if bw < 180.0 {
                slow_pairs += 1;
            }
        }
    }
    println!("{label}: {slow_pairs}/{total_pairs} pairs below 180 GB/s (min {min_bw:.1} GB/s)");
}

fn main() {
    let mut tree = FatTree::build(FatTreeConfig::figure3_testbed()).expect("valid testbed");
    println!(
        "fat-tree testbed: {} nodes, {} ToRs, {} pods, masking budget {} uplinks/ToR\n",
        tree.nodes(),
        tree.tors(),
        tree.pods(),
        tree.tor_uplinks(0).unwrap().masking_budget()
    );

    scan_and_report(&tree, "healthy fabric          ");

    // Hidden damage: breakage inside the masking budget is invisible.
    tree.break_tor_uplinks(0, 4).unwrap();
    scan_and_report(&tree, "4 uplinks down (masked) ");

    // Past the budget: the Figure 3 congestion tail appears.
    tree.break_tor_uplinks(0, 4).unwrap();
    tree.break_tor_uplinks(3, 6).unwrap();
    scan_and_report(&tree, "redundancy violated     ");

    // The quick scan pinpoints it in 3 rounds regardless of scale.
    println!("\nquick scan (one round per hop tier):");
    for (round_idx, round) in quick_scan_rounds(&tree).unwrap().iter().enumerate() {
        let bws = concurrent_pair_bandwidths(&tree, round).unwrap();
        let slow: Vec<String> = round
            .iter()
            .zip(&bws)
            .filter(|(_, &bw)| bw < 180.0)
            .map(|((a, b), bw)| format!("({a},{b}): {bw:.0} GB/s"))
            .collect();
        println!(
            "  round {} ({} pairs): {}",
            round_idx + 1,
            round.len(),
            if slow.is_empty() {
                "all clean".to_string()
            } else {
                slow.join(", ")
            }
        );
    }

    // Repair to full redundancy and confirm.
    tree.repair_tor_uplinks(0, true).unwrap();
    tree.repair_tor_uplinks(3, true).unwrap();
    println!();
    scan_and_report(&tree, "after full repair       ");
}

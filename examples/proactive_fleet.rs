//! Proactive fleet operation: the Figure 8 / Table 4 scenario in miniature.
//!
//! Fits the Selector's survival model on a synthetic incident trace,
//! replays a stressed allocation trace through the cluster simulator under
//! three policies (no validation, full-set validation, ANUBIS Selector),
//! and prints the utilization / validation-cost / MTBI trade-off.
//!
//! ```text
//! cargo run --release --example proactive_fleet
//! ```

use anubis::cluster::{simulate, ClusterSimConfig, Policy};
use anubis::selector::{ExponentialPerCountModel, Selector, SelectorConfig};
use anubis::traces::{
    generate_allocation_trace, generate_incident_trace, AllocationConfig, IncidentTraceConfig,
};
use anubis_bench::experiments::fig8::table6_coverage_history;

fn main() {
    // 1. Fit the incident-probability model on the synthetic trace (the
    //    exponential-per-count baseline keeps this example fast; swap in
    //    `CoxTimeModel::fit` for the paper's flagship model).
    let trace = generate_incident_trace(&IncidentTraceConfig {
        nodes: 200,
        ..IncidentTraceConfig::default()
    });
    let samples = trace.survival_samples(96.0);
    println!("fitted survival model on {} status samples", samples.len());
    let model = ExponentialPerCountModel::fit(&samples);
    let selector = Selector::new(
        Box::new(model),
        table6_coverage_history(),
        SelectorConfig::default(),
    );

    // 2. Simulate 30 days of a 96-node cluster under each policy.
    let sim = ClusterSimConfig {
        nodes: 96,
        ..Default::default()
    };
    let jobs = generate_allocation_trace(&AllocationConfig::stressed(sim.nodes));
    println!(
        "replaying {} job requests over 30 days on {} nodes\n",
        jobs.len(),
        sim.nodes
    );

    println!(
        "{:<16} {:>12} {:>16} {:>10} {:>14}",
        "policy", "utilization", "validation (h)", "MTBI (h)", "interruptions"
    );
    let mut rows = Vec::new();
    for policy in [
        Policy::Absence,
        Policy::FullSet,
        Policy::Selector(&selector),
    ] {
        let outcome = simulate(&sim, &jobs, &policy);
        println!(
            "{:<16} {:>11.1}% {:>16.1} {:>10.1} {:>14}",
            outcome.policy.name(),
            outcome.avg_utilization * 100.0,
            outcome.avg_validation_hours,
            outcome.mtbi_hours,
            outcome.jobs_interrupted
        );
        rows.push(outcome);
    }

    let absence = &rows[0];
    let full = &rows[1];
    let selector_row = &rows[2];
    println!(
        "\nANUBIS Selector vs no validation: MTBI x{:.1}, utilization x{:.1}",
        selector_row.mtbi_hours / absence.mtbi_hours,
        selector_row.avg_utilization / absence.avg_utilization
    );
    println!(
        "ANUBIS Selector vs full set: {:.1}% less validation time",
        (1.0 - selector_row.avg_validation_hours / full.avg_validation_hours) * 100.0
    );
}

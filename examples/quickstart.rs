//! Quickstart: validate a small fleet end to end.
//!
//! Builds a 16-node simulated A100 fleet with two injected gray failures,
//! bootstraps ANUBIS criteria from a build-out run, and validates the
//! fleet — printing which nodes were filtered as defective and by which
//! benchmarks.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use anubis::hwsim::{FaultKind, NodeId, NodeSim, NodeSpec};
use anubis::{Anubis, AnubisConfig, ValidationEvent};

fn main() {
    // A fresh 16-node fleet (simulated ND A100 v4 VMs).
    let mut nodes: Vec<NodeSim> = (0..16)
        .map(|i| NodeSim::new(NodeId(i), NodeSpec::a100_8x(), 2024))
        .collect();
    let members: Vec<usize> = (0..nodes.len()).collect();

    // Two gray failures: a PCIe downgrade and the Section 2.1 overlap
    // interference that no standalone benchmark can see.
    nodes[5].inject_fault(FaultKind::PcieDowngrade { severity: 0.5 });
    nodes[11].inject_fault(FaultKind::OverlapInterference { severity: 0.3 });

    // Cluster build-out: run the full single-node suite, learn criteria.
    let mut system = Anubis::new(AnubisConfig::default());
    let buildout = system
        .handle_event(&ValidationEvent::NodesAdded, &mut nodes, &members, None)
        .expect("build-out validation");

    println!(
        "build-out: {} benchmarks, {:.0} minutes of validation",
        buildout.benchmarks.len(),
        buildout.duration_minutes
    );
    println!("defective nodes found during build-out:");
    for node in &buildout.defective {
        println!("  {node}");
    }

    // The per-benchmark verdicts live in the Validator's criteria; show
    // which benchmark caught which node.
    let report = system
        .handle_event(
            &ValidationEvent::RegularCheck {
                horizon_hours: 24.0,
            },
            &mut nodes,
            &members,
            None,
        )
        .expect("regular check");
    println!("\nregular check re-confirmed:");
    for (node, _) in report.defective.iter().zip(0..) {
        println!("  {node}");
    }
    for node in [NodeId(5), NodeId(11)] {
        assert!(
            buildout.defective.contains(&node),
            "{node} carries an injected defect and must be filtered"
        );
    }
    println!("\nboth injected gray failures were caught before any customer job ran");
}

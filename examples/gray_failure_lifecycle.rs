//! Gray-failure lifecycle: wear, hidden damage, and regular validation.
//!
//! Drives six months in the life of a 24-node fleet through
//! [`anubis::FleetDriver`]: nodes wear under sustained use (redundancy
//! silently eroding), ANUBIS runs a regular check every two weeks, and
//! caught defects are swapped against a hot buffer. The run prints, per
//! month, how much damage sits in the *gray* state (hidden by redundancy),
//! how much turned benchmark-visible, and what validation caught.
//!
//! ```text
//! cargo run --release --example gray_failure_lifecycle
//! ```

use anubis::hwsim::{NodeId, NodeSim, NodeSpec, WearModel};
use anubis::{Anubis, AnubisConfig, FleetDriver};

fn main() {
    let fleet_size = 24u32;
    let nodes: Vec<NodeSim> = (0..fleet_size)
        .map(|i| NodeSim::new(NodeId(i), NodeSpec::a100_8x(), 11))
        .collect();
    let spares = (100..108).map(|i| NodeSim::new(NodeId(i), NodeSpec::a100_8x(), 11));

    // Scale the fleet-average wear rate to ~1 onset per node per two
    // months, a realistic build-out-grade fleet, and bootstrap criteria.
    let mut driver = FleetDriver::new(
        Anubis::new(AnubisConfig::default()),
        nodes,
        spares,
        WearModel::azure_like().scaled(0.2),
        77,
    )
    .expect("build-out bootstrap");

    let mut caught_total = 0usize;
    println!("month | onsets | gray nodes | visible | caught | swaps left");
    println!("------+--------+------------+---------+--------+-----------");
    for month in 1..=6 {
        // Two wear-and-check cycles per month (bi-weekly regular checks).
        let mut caught = 0usize;
        let mut onsets = 0usize;
        let mut last = None;
        for _ in 0..2 {
            let report = driver.step(336.0).expect("regular check");
            caught += report.caught;
            onsets += report.onsets;
            last = Some(report);
        }
        caught_total += caught;
        let last = last.expect("two steps ran");
        println!(
            "{month:>5} | {onsets:>6} | {:>10} | {:>7} | {caught:>6} | {:>10}",
            last.gray_nodes,
            last.visible_nodes,
            driver.repair().hot_buffer_len()
        );
    }
    println!("\ntotal defects caught proactively over 6 months: {caught_total}");
    println!(
        "sub-threshold degradations remaining (visible to benchmarks but within α): {}",
        driver
            .nodes()
            .iter()
            .filter(|n| n.has_detectable_defect())
            .count()
    );
    println!("simulated hours: {}", driver.clock_hours());
}

//! Cluster build-out: the Table 6 quality-gate scenario.
//!
//! Generates a build-out fleet with realistic defect-injection rates, runs
//! a representative subset of the benchmark suite, learns criteria with
//! Algorithm 2, and prints per-benchmark defect shares and healthy-node
//! repeatability — the report an operator reviews before handing nodes to
//! customers.
//!
//! ```text
//! cargo run --release --example cluster_buildout
//! ```

use anubis::benchsuite::{run_benchmark, BenchmarkId};
use anubis::metrics::{mean_pairwise_similarity, Sample};
use anubis::traces::{generate_buildout_fleet, BuildoutConfig};
use anubis::validator::{calculate_criteria, CentroidMethod, DEFAULT_ALPHA};
use std::collections::BTreeSet;

fn main() {
    let vms = 300u32;
    let mut fleet = generate_buildout_fleet(&BuildoutConfig { vms, seed: 7 });
    println!("build-out fleet: {vms} simulated A100 VMs\n");

    let gate: Vec<BenchmarkId> = vec![
        BenchmarkId::IbHcaLoopback,
        BenchmarkId::GpuH2dBandwidth,
        BenchmarkId::CpuLatency,
        BenchmarkId::GpuGemmFp16,
        BenchmarkId::MatmulAllReduceOverlap,
        BenchmarkId::TrainBert,
    ];

    let mut all_defective: BTreeSet<u32> = BTreeSet::new();
    println!(
        "{:<28} {:>13} {:>15}",
        "benchmark", "defects", "repeatability"
    );
    for bench in gate {
        let samples: Vec<Sample> = fleet
            .iter_mut()
            .map(|node| run_benchmark(bench, node).expect("single-node benchmark"))
            .collect();
        let result = calculate_criteria(&samples, DEFAULT_ALPHA, CentroidMethod::Medoid)
            .expect("fleet is non-empty");
        for &idx in &result.defects {
            all_defective.insert(fleet[idx].id().0);
        }
        let healthy: Vec<Sample> = samples
            .iter()
            .enumerate()
            .filter(|(i, _)| !result.defects.contains(i))
            .take(100)
            .map(|(_, s)| s.clone())
            .collect();
        println!(
            "{:<28} {:>9} / {vms} {:>14.2}%",
            bench.to_string(),
            result.defects.len(),
            mean_pairwise_similarity(&healthy) * 100.0
        );
    }
    println!(
        "\nquality gate verdict: {} of {vms} nodes ({:.2}%) go out for repair",
        all_defective.len(),
        all_defective.len() as f64 / f64::from(vms) * 100.0
    );
}
